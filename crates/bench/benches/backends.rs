//! `backends`: the fingerprint-backend Pareto sweep and the snapshot
//! restart economics.
//!
//! Three measurements, each in a fresh child process so `VmHWM` (peak
//! RSS) is attributable to that run alone:
//!
//! - **per-backend index build + probe** at `chrome-scale` (120k
//!   functions): streams the workload through [`FunctionStream`], signs
//!   every function with one [`FingerprintBackend`], packs signatures
//!   and band keys into the SoA [`PackedFingerprintStore`], inserts into
//!   the sharded LSH index, then probes a sample of planted-family
//!   members. Reports build/probe latency, recall against the stream's
//!   ground-truth family tags, bytes per function and peak RSS — one
//!   Pareto point per backend.
//! - **chrome-full** (1.2M functions, full mode only): the same pipeline
//!   for the default MinHash backend at the paper's real Chrome scale,
//!   streamed so memory stays bounded by the packed store itself.
//! - **snapshot restore vs rebuild** (the daemon-restart economics): a
//!   corpus is built the slow way (parse + fingerprint + index), saved,
//!   and reopened via `Corpus::load_snapshot`. Full mode asserts restore
//!   is >= 10x faster than the rebuild it replaces.
//! - **bulk vs mmap-resident restore**: the same snapshot reopened in a
//!   bulk-read child and in a budgeted `Corpus::load_snapshot_resident`
//!   child, each serving the same query workload. Answers must hash
//!   identically in every mode; full mode additionally asserts the
//!   budgeted restore peaks strictly below the bulk baseline's RSS.
//!
//! Results go to `results/BENCH_backends.json`; `--smoke` shrinks every
//! axis for CI and skips the chrome-full point and the full-mode-only
//! assertions.

use std::collections::HashMap;
use std::path::Path;
use std::time::Instant;

use f3m_core::corpus::{Corpus, CorpusConfig};
use f3m_fingerprint::lsh::band_keys_for;
use f3m_fingerprint::resident::TARGET_SHARD_BYTES;
use f3m_fingerprint::{
    backend_for, probe_keys_for, BackendKind, MergeParams, PackedFingerprintStore, PagerKind,
    QueryScratch, ShardedLshIndex,
};
use f3m_workloads::stream::{chrome_full, FunctionStream};
use f3m_workloads::WorkloadSpec;

/// How much faster a snapshot restore must be than the rebuild it
/// replaces (asserted in full mode only; smoke corpora are too small for
/// the ratio to be stable).
const SNAPSHOT_SPEEDUP_TARGET: f64 = 10.0;

/// Multi-probe budget for the extra embed Pareto point.
const PROBE_POINT: usize = 16;

/// Residency budget for the budgeted restore child: a handful of hot
/// shards, far below the full pool size at either scale.
const RESTORE_BUDGET: u64 = (4 * TARGET_SHARD_BYTES) as u64;

fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

fn chrome_scale_spec(functions: usize) -> WorkloadSpec {
    let mut spec = f3m_workloads::table1()
        .into_iter()
        .find(|s| s.name == "chrome-scale")
        .expect("chrome-scale in table1");
    spec.functions = functions;
    spec
}

/// Child: build one backend's index over a streamed workload, probe a
/// sample of planted-family members (widened by `probes` extra
/// multi-probe keys when nonzero), print one `RESULT {json}` line.
fn child_index(backend: BackendKind, workload: &str, functions: usize, queries: usize, probes: usize) {
    let spec = if workload == "chrome-full" {
        chrome_full()
    } else {
        chrome_scale_spec(functions)
    };
    let params = MergeParams::adaptive(spec.functions).with_backend(backend).with_probes(probes);
    let be = backend_for(backend, params.k);
    let shards = 4;
    let index: ShardedLshIndex<u32> = ShardedLshIndex::new(params.lsh, shards);
    let mut store =
        PackedFingerprintStore::with_capacity(params.k, params.lsh.bands, spec.functions);
    let mut family_of: Vec<u32> = Vec::with_capacity(spec.functions);
    let mut families: HashMap<u32, u32> = HashMap::new(); // family -> member count

    const NO_FAMILY: u32 = u32::MAX;
    let t_all = Instant::now();
    let mut fingerprint_ns = 0u128;
    let mut index_ns = 0u128;
    for f in FunctionStream::new(&spec) {
        let t = Instant::now();
        let sig = be.signature(&f.encoded);
        let keys = band_keys_for(params.lsh, &sig);
        fingerprint_ns += t.elapsed().as_nanos();

        let t = Instant::now();
        let row = store.push_with_keys(&sig, &keys);
        index.insert_with_keys(row as u32, &keys);
        index_ns += t.elapsed().as_nanos();

        let fam = f.family.unwrap_or(NO_FAMILY);
        family_of.push(fam);
        if fam != NO_FAMILY {
            *families.entry(fam).or_default() += 1;
        }
        if store.len().is_multiple_of(200_000) {
            eprintln!(
                "  [{}/{}] {} fns indexed, {:.1}s",
                backend.name(),
                workload,
                store.len(),
                t_all.elapsed().as_secs_f64()
            );
        }
    }
    let build_ms = t_all.elapsed().as_millis();

    // Probe an even sample of tagged members. Every tagged function has
    // a tagged sibling by construction, so "a same-family candidate came
    // back" is a well-defined recall event for each probe.
    let tagged: Vec<u32> = (0..store.len() as u32)
        .filter(|&i| family_of[i as usize] != NO_FAMILY)
        .collect();
    let step = (tagged.len() / queries.max(1)).max(1);
    let sample: Vec<u32> = tagged.iter().copied().step_by(step).take(queries).collect();

    let mut scratch = QueryScratch::new();
    let mut hits = 0usize;
    let mut probe_collisions = 0usize;
    let mut examined = 0usize;
    let t_q = Instant::now();
    for &id in &sample {
        let stats = if probes > 0 {
            let widened = probe_keys_for(params.lsh, store.sig(id as usize), probes);
            index.probe_keys_into(&widened, id, &mut scratch)
        } else {
            index.probe_keys_into(store.keys(id as usize), id, &mut scratch)
        };
        probe_collisions += stats.collisions;
        examined += stats.examined;
        let fam = family_of[id as usize];
        if scratch.out.iter().any(|&c| family_of[c as usize] == fam) {
            hits += 1;
        }
    }
    let query_ns = t_q.elapsed().as_nanos();
    let recall = hits as f64 / sample.len().max(1) as f64;
    let query_us_mean = query_ns as f64 / 1e3 / sample.len().max(1) as f64;

    println!(
        "RESULT {{\"backend\":\"{}\",\"workload\":\"{}\",\"functions\":{},\
         \"k\":{},\"bands\":{},\"probes\":{},\"build_ms\":{},\"fingerprint_ms\":{},\"index_ms\":{},\
         \"queries\":{},\"query_us_mean\":{:.3},\"recall\":{:.4},\
         \"probe_collisions\":{},\"candidates_examined\":{},\
         \"bytes_per_fn\":{},\"soa_bytes\":{},\"index_buckets\":{},\
         \"peak_rss_kb\":{}}}",
        backend.name(),
        spec.name,
        store.len(),
        params.k,
        params.lsh.bands,
        probes,
        build_ms,
        fingerprint_ns / 1_000_000,
        index_ns / 1_000_000,
        sample.len(),
        query_us_mean,
        recall,
        probe_collisions,
        examined,
        store.bytes_per_fn(),
        store.total_bytes(),
        index.num_buckets(),
        peak_rss_kb(),
    );
}

/// Child: daemon-restart economics. Builds a corpus the slow way (the
/// serve fallback path: parse every module source, fingerprint, index),
/// saves a snapshot to `keep_path` (left behind for the restore-mode
/// children), reopens it, and checks the reopened corpus answers queries
/// identically.
fn child_snapshot(functions: usize, modules: usize, keep_path: &Path) {
    let per_module = (functions / modules).max(8);
    let sources: Vec<(String, String)> = (0..modules)
        .map(|i| {
            let mut spec = chrome_scale_spec(per_module);
            spec.seed = spec.seed.wrapping_add(i as u64);
            let mut m = f3m_workloads::build_module(&spec);
            m.name = format!("chrome_part{i}");
            (m.name.clone(), f3m_ir::printer::print_module(&m))
        })
        .collect();
    eprintln!("  [snapshot] {} modules x {} fns generated", modules, per_module);

    let cfg = || CorpusConfig { jobs: 1, ..CorpusConfig::default() };

    // Rebuild path: what a daemon with no (usable) snapshot must do.
    let t = Instant::now();
    let corpus = Corpus::new(cfg());
    for (_, src) in &sources {
        let m = f3m_ir::parser::parse_module(src).expect("generated module parses");
        corpus.ingest(m).expect("ingest");
    }
    let rebuild_ms = t.elapsed().as_millis();

    let t = Instant::now();
    corpus.save_snapshot(keep_path).expect("save snapshot");
    let save_ms = t.elapsed().as_millis();
    let snapshot_bytes = std::fs::metadata(keep_path).map(|m| m.len()).unwrap_or(0);

    // Restart path: open the snapshot.
    let t = Instant::now();
    let restored = Corpus::load_snapshot(keep_path, cfg()).expect("load snapshot");
    let load_ms = t.elapsed().as_millis();

    // The restored corpus must be indistinguishable to a client.
    let (_, a) = corpus.query_module("chrome_part0", 3).expect("query original");
    let (_, b) = restored.query_module("chrome_part0", 3).expect("query restored");
    assert_eq!(a, b, "restored corpus must answer queries identically");

    let speedup = rebuild_ms as f64 / (load_ms as f64).max(1.0);
    println!(
        "RESULT {{\"functions\":{},\"modules\":{},\"rebuild_ms\":{},\"save_ms\":{},\
         \"load_ms\":{},\"snapshot_bytes\":{},\"speedup\":{:.2},\"peak_rss_kb\":{}}}",
        per_module * modules,
        modules,
        rebuild_ms,
        save_ms,
        load_ms,
        snapshot_bytes,
        speedup,
        peak_rss_kb(),
    );
}

/// Child: reopen an existing snapshot in one restore mode (`bulk` reads
/// the whole file; `resident` maps it under `budget` pool bytes) and
/// serve the same fixed query workload. Peak RSS is attributable to the
/// restore + first answers alone — the expensive build happened in the
/// sibling child that wrote the snapshot.
fn child_restore(path: &Path, mode: &str, budget: u64) {
    let cfg = CorpusConfig { jobs: 1, ..CorpusConfig::default() };
    let t = Instant::now();
    let corpus = match mode {
        "bulk" => Corpus::load_snapshot(path, cfg).expect("bulk load"),
        "resident" => Corpus::load_snapshot_resident(path, cfg, PagerKind::Auto, budget)
            .expect("resident load"),
        other => panic!("unknown restore mode `{other}`"),
    };
    let load_ms = t.elapsed().as_millis();
    // Restart-to-first-answer: one module's candidates. The parent
    // compares the hash across modes, so the budgeted mapped store must
    // answer byte-identically to the fully-resident baseline.
    let (epoch, results) = corpus.query_module("chrome_part0", 3).expect("query restored");
    let rendered = format!("{epoch}:{results:?}");
    let answers_hash = f3m_fingerprint::fnv::fnv1a(rendered.as_bytes());
    let (pager, rc) = corpus.residency().unwrap_or(("none", Default::default()));
    println!(
        "RESULT {{\"mode\":\"{mode}\",\"budget\":{budget},\"load_ms\":{load_ms},\
         \"answers_hash\":\"{answers_hash:016x}\",\"pager\":\"{pager}\",\
         \"resident_bytes\":{},\"shard_faults\":{},\"shard_spills\":{},\"peak_rss_kb\":{}}}",
        rc.resident_bytes,
        rc.shard_faults,
        rc.shard_spills,
        peak_rss_kb(),
    );
}

/// Runs this same binary in child mode and returns the `RESULT` JSON.
fn run_child(args: &[String]) -> String {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .args(args)
        .stderr(std::process::Stdio::inherit())
        .output()
        .expect("spawn child bench");
    assert!(out.status.success(), "child {:?} failed", args);
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("RESULT "))
        .unwrap_or_else(|| panic!("child {args:?} printed no RESULT line:\n{stdout}"))
        .to_string()
}

/// Pulls a numeric field out of a flat JSON object (the bench writes its
/// own JSON, so a string scan is enough — no parser in the workspace).
fn json_num(json: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat).map(|i| i + pat.len()).expect("field present");
    let rest = &json[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().expect("numeric field")
}

/// Pulls a string field out of a flat JSON object.
fn json_str(json: &str, key: &str) -> String {
    let pat = format!("\"{key}\":\"");
    let start = json.find(&pat).map(|i| i + pat.len()).expect("field present");
    let rest = &json[start..];
    let end = rest.find('"').expect("closing quote");
    rest[..end].to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Child dispatch:
    //   --child-index <backend> <workload> <functions> <queries> <probes>
    //   --child-snapshot <functions> <modules> <path>
    //   --child-restore <path> <bulk|resident> <budget>
    if let Some(i) = args.iter().position(|a| a == "--child-index") {
        let backend = BackendKind::parse(&args[i + 1]).expect("backend name");
        let functions: usize = args[i + 3].parse().unwrap();
        let queries: usize = args[i + 4].parse().unwrap();
        let probes: usize = args[i + 5].parse().unwrap();
        child_index(backend, &args[i + 2], functions, queries, probes);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--child-snapshot") {
        let functions: usize = args[i + 1].parse().unwrap();
        let modules: usize = args[i + 2].parse().unwrap();
        child_snapshot(functions, modules, Path::new(&args[i + 3]));
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--child-restore") {
        let budget: u64 = args[i + 3].parse().unwrap();
        child_restore(Path::new(&args[i + 1]), &args[i + 2], budget);
        return;
    }

    let smoke = args.iter().any(|a| a == "--smoke");
    let (scale_fns, queries, full_point, snap_fns, snap_modules) =
        if smoke { (6_000, 400, false, 2_000, 4) } else { (120_000, 2_000, true, 120_000, 8) };

    let mut per_backend = Vec::new();
    // One point per backend, plus a multi-probe point for the embed
    // backend — probes trade query time for recall on the same index.
    let mut points: Vec<(BackendKind, usize)> =
        BackendKind::ALL.iter().map(|&b| (b, 0)).collect();
    points.push((BackendKind::Embed, PROBE_POINT));
    for (backend, probes) in points {
        eprintln!(
            "backends: indexing chrome-scale ({scale_fns} fns) with {} (probes {probes})",
            backend.name()
        );
        let row = run_child(&[
            "--child-index".into(),
            backend.name().into(),
            "chrome-scale".into(),
            scale_fns.to_string(),
            queries.to_string(),
            probes.to_string(),
        ]);
        println!(
            "backends/{:<8} probes {:>3}  build {:>8.0} ms  query {:>7.1} us  recall {:.3}  \
             {:>4.0} B/fn  peak {:>7.0} kB",
            backend.name(),
            probes,
            json_num(&row, "build_ms"),
            json_num(&row, "query_us_mean"),
            json_num(&row, "recall"),
            json_num(&row, "bytes_per_fn"),
            json_num(&row, "peak_rss_kb"),
        );
        per_backend.push(row);
    }

    let chrome_full_row = if full_point {
        let spec = chrome_full();
        eprintln!("backends: indexing chrome-full ({} fns) with minhash", spec.functions);
        let row = run_child(&[
            "--child-index".into(),
            "minhash".into(),
            "chrome-full".into(),
            spec.functions.to_string(),
            queries.to_string(),
            "0".into(),
        ]);
        println!(
            "backends/chrome-full build {:.0} ms ({} fns)  query {:.1} us  recall {:.3}  \
             peak {:.0} kB",
            json_num(&row, "build_ms"),
            json_num(&row, "functions"),
            json_num(&row, "query_us_mean"),
            json_num(&row, "recall"),
            json_num(&row, "peak_rss_kb"),
        );
        Some(row)
    } else {
        None
    };

    eprintln!("backends: snapshot restore vs rebuild ({snap_fns} fns, {snap_modules} modules)");
    let dir = std::env::temp_dir().join(format!("f3m_bench_snap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let snap_path = dir.join("corpus.f3msnap");
    let snap = run_child(&[
        "--child-snapshot".into(),
        snap_fns.to_string(),
        snap_modules.to_string(),
        snap_path.display().to_string(),
    ]);
    let speedup = json_num(&snap, "speedup");
    println!(
        "backends/snapshot rebuild {:.0} ms  save {:.0} ms  load {:.0} ms  speedup {:.1}x",
        json_num(&snap, "rebuild_ms"),
        json_num(&snap, "save_ms"),
        json_num(&snap, "load_ms"),
        speedup,
    );
    if !smoke {
        assert!(
            speedup >= SNAPSHOT_SPEEDUP_TARGET,
            "snapshot restore must be >= {SNAPSHOT_SPEEDUP_TARGET}x faster than rebuild \
             at chrome-scale, measured {speedup:.1}x"
        );
    }

    // Bulk vs budgeted mmap-resident restore of that same snapshot, each
    // in its own child so VmHWM isolates the restore path.
    eprintln!("backends: restore modes (budget {RESTORE_BUDGET} B)");
    let bulk = run_child(&[
        "--child-restore".into(),
        snap_path.display().to_string(),
        "bulk".into(),
        "0".into(),
    ]);
    let resident = run_child(&[
        "--child-restore".into(),
        snap_path.display().to_string(),
        "resident".into(),
        RESTORE_BUDGET.to_string(),
    ]);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "backends/restore bulk     load {:>6.0} ms  peak {:>7.0} kB",
        json_num(&bulk, "load_ms"),
        json_num(&bulk, "peak_rss_kb"),
    );
    println!(
        "backends/restore resident load {:>6.0} ms  peak {:>7.0} kB  \
         ({} pager, {:.0} B hot, {:.0} faults, {:.0} spills)",
        json_num(&resident, "load_ms"),
        json_num(&resident, "peak_rss_kb"),
        json_str(&resident, "pager"),
        json_num(&resident, "resident_bytes"),
        json_num(&resident, "shard_faults"),
        json_num(&resident, "shard_spills"),
    );
    // Byte-identical answers are non-negotiable in every mode.
    assert_eq!(
        json_str(&bulk, "answers_hash"),
        json_str(&resident, "answers_hash"),
        "budgeted mmap-resident restore must answer queries byte-identically \
         to the bulk baseline"
    );
    if !smoke {
        let bulk_rss = json_num(&bulk, "peak_rss_kb");
        let resident_rss = json_num(&resident, "peak_rss_kb");
        assert!(
            resident_rss < bulk_rss,
            "budgeted chrome-scale restore must peak strictly below the bulk \
             baseline: resident {resident_rss:.0} kB vs bulk {bulk_rss:.0} kB"
        );
    }

    let json = format!(
        "{{\"smoke\":{smoke},\"snapshot_speedup_target\":{SNAPSHOT_SPEEDUP_TARGET},\
         \"per_backend\":[{}],\"chrome_full\":{},\"snapshot\":{},\
         \"restore\":{{\"budget\":{RESTORE_BUDGET},\"bulk\":{},\"resident\":{}}}}}",
        per_backend.join(","),
        chrome_full_row.as_deref().unwrap_or("null"),
        snap,
        bulk,
        resident,
    );
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
        .join("BENCH_backends.json");
    f3m_trace::write_with_dirs(&out_path, &json).expect("write BENCH_backends.json");
    println!("backends: wrote {}", out_path.display());
}
