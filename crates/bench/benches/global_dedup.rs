//! `global_dedup`: cross-module vs per-module merging economics.
//!
//! Builds two corpora and merges each both ways:
//!
//! - **per-module baseline** — every module runs the ordinary F3M pass
//!   (`run_pass`, `PassConfig::f3m()`) in isolation; savings are summed,
//! - **global** — the same pristine modules are ingested into a resident
//!   corpus and merged by the two-phase [`GlobalMergePlanner`], which can
//!   additionally fold twins that live in *different* modules.
//!
//! Workloads:
//!
//! - **multi-module** — several mini-suite modules where a subset shares
//!   the generator seed, so function families are twinned across module
//!   boundaries. Per-module merging is structurally blind to those twins,
//!   so the bench *asserts* the global plan saves strictly more bytes.
//! - **chrome-scale** — the Table I `chrome-scale` spec scaled down
//!   (the verification phase runs interpreter differentials per merge,
//!   so the 120k-function original is out of reach) and split into three
//!   translation-unit-like modules, two twinned and one fresh.
//!
//! Results go to `results/BENCH_global.json`; `--smoke` shrinks both
//! workloads for CI, `--full` grows them.

use std::time::Instant;

use f3m_core::corpus::{Corpus, CorpusConfig};
use f3m_core::{run_pass, GlobalMergePlanner, GlobalPlanConfig, PassConfig};
use f3m_ir::module::Module;
use f3m_workloads::WorkloadSpec;

fn module_from(spec: &WorkloadSpec, name: &str, seed: u64) -> Module {
    let mut spec = spec.clone();
    spec.seed = seed;
    let mut m = f3m_workloads::build_module(&spec);
    m.name = name.to_string();
    m
}

/// One workload's worth of modules: `modules` instances of `spec`, the
/// first `twinned` sharing the base seed (cross-module clone families),
/// the rest seeded fresh (intra-module families only).
fn module_set(spec: &WorkloadSpec, prefix: &str, modules: usize, twinned: usize) -> Vec<Module> {
    (0..modules)
        .map(|i| {
            let seed = if i < twinned { spec.seed } else { spec.seed + 1000 + i as u64 };
            module_from(spec, &format!("{prefix}{i}"), seed)
        })
        .collect()
}

struct Outcome {
    modules: usize,
    functions: u64,
    per_module_saved: u64,
    per_module_size_before: u64,
    per_module_size_after: u64,
    per_module_ns: u128,
    global_saved: u64,
    global_size_before: u64,
    global_size_after: u64,
    global_ns: u128,
    cross_module_pairs: u64,
    verified_merges: u64,
    rolled_back: u64,
    rounds: u64,
}

impl Outcome {
    fn per_module_dedup(&self) -> f64 {
        self.per_module_saved as f64 / self.per_module_size_before.max(1) as f64
    }
    fn global_dedup(&self) -> f64 {
        self.global_saved as f64 / self.global_size_before.max(1) as f64
    }
    fn json(&self, name: &str) -> String {
        format!(
            "{{\"name\":\"{name}\",\"modules\":{},\"functions\":{},\
             \"per_module\":{{\"bytes_saved\":{},\"size_before\":{},\"size_after\":{},\
             \"dedup_rate\":{:.6},\"elapsed_ns\":{}}},\
             \"global\":{{\"bytes_saved\":{},\"size_before\":{},\"size_after\":{},\
             \"dedup_rate\":{:.6},\"elapsed_ns\":{},\"cross_module_pairs\":{},\
             \"verified_merges\":{},\"rolled_back\":{},\"rounds\":{}}},\
             \"advantage_bytes\":{}}}",
            self.modules,
            self.functions,
            self.per_module_saved,
            self.per_module_size_before,
            self.per_module_size_after,
            self.per_module_dedup(),
            self.per_module_ns,
            self.global_saved,
            self.global_size_before,
            self.global_size_after,
            self.global_dedup(),
            self.global_ns,
            self.cross_module_pairs,
            self.verified_merges,
            self.rolled_back,
            self.rounds,
            self.global_saved as i64 - self.per_module_saved as i64,
        )
    }
}

/// Merges `mods` per-module and globally, from the same pristine inputs.
///
/// `k` is the global planner's per-function candidate draw. It must
/// scale with the module count: each resident function competes for
/// slots against both its in-module clone family and its cross-module
/// twins, and a draw sized for one module undersamples the other.
fn run_workload(mods: &[Module], jobs: usize, k: usize) -> Outcome {
    // Per-module baseline: the ordinary pass, one module at a time.
    let t0 = Instant::now();
    let (mut saved, mut before, mut after) = (0u64, 0u64, 0u64);
    for m in mods {
        let mut copy = m.clone();
        let report = run_pass(&mut copy, &PassConfig::f3m());
        f3m_ir::verify::verify_module(&copy).expect("per-module merged module verifies");
        saved += report.stats.size_before.saturating_sub(report.stats.size_after);
        before += report.stats.size_before;
        after += report.stats.size_after;
    }
    let per_module_ns = t0.elapsed().as_nanos();

    // Global: resident corpus over the same pristine modules.
    let corpus = Corpus::new(CorpusConfig { shards: 4, jobs: 2, ..CorpusConfig::default() });
    let mut functions = 0u64;
    for m in mods {
        functions += corpus.ingest(m.clone()).expect("ingest").functions as u64;
    }
    let t0 = Instant::now();
    let mut cfg = GlobalPlanConfig::default().with_jobs(jobs);
    cfg.k = k;
    let planner = GlobalMergePlanner::new(&corpus, cfg);
    let (report, merged, _epoch) = planner.run().expect("global plan");
    let global_ns = t0.elapsed().as_nanos();
    f3m_ir::verify::verify_module(&merged).expect("global merged module verifies");

    let s = &report.stats;
    Outcome {
        modules: mods.len(),
        functions,
        per_module_saved: saved,
        per_module_size_before: before,
        per_module_size_after: after,
        per_module_ns,
        global_saved: s.size_before.saturating_sub(s.size_after),
        global_size_before: s.size_before,
        global_size_after: s.size_after,
        global_ns,
        cross_module_pairs: s.cross_module_pairs,
        verified_merges: s.verified_merges,
        rolled_back: s.rolled_back,
        rounds: s.rounds,
    }
}

fn print_outcome(name: &str, o: &Outcome) {
    println!(
        "global_dedup/{name}: modules={} functions={}  \
         per-module {} bytes ({:.1}%) in {:>7.2} ms  \
         global {} bytes ({:.1}%) in {:>7.2} ms  \
         cross-module pairs {}  advantage {:+} bytes",
        o.modules,
        o.functions,
        o.per_module_saved,
        100.0 * o.per_module_dedup(),
        o.per_module_ns as f64 / 1e6,
        o.global_saved,
        100.0 * o.global_dedup(),
        o.global_ns as f64 / 1e6,
        o.cross_module_pairs,
        o.global_saved as i64 - o.per_module_saved as i64,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let full = std::env::args().any(|a| a == "--full");
    // (multi-module: modules, twinned, functions; chrome: scale factor)
    let (mm_modules, mm_twinned, mm_functions, chrome_factor) = if smoke {
        (3, 2, 12, 0.0002)
    } else if full {
        (6, 4, 48, 0.002)
    } else {
        (4, 3, 24, 0.0005)
    };
    let jobs = 2;

    // Multi-module: mini-suite spec, most modules seed-twinned.
    let mut mm_spec = f3m_workloads::mini_suite()[0].clone();
    mm_spec.functions = mm_functions;
    mm_spec.seed = 4321;
    let mm_mods = module_set(&mm_spec, "mm", mm_modules, mm_twinned);
    let mm = run_workload(&mm_mods, jobs, 4 + 2 * mm_modules);
    print_outcome("multi-module", &mm);

    // The acceptance bar: per-module merging cannot see the twins that
    // live in different modules, so the global plan must save strictly
    // more bytes — not merely tie — on this workload.
    assert!(mm.cross_module_pairs > 0, "multi-module workload must offer cross-module pairs");
    assert!(
        mm.global_saved > mm.per_module_saved,
        "global merging must beat per-module merging on the twinned workload: \
         global {} <= per-module {}",
        mm.global_saved,
        mm.per_module_saved
    );

    // Chrome-scale (scaled down), split into 3 TU-like modules, 2 twinned.
    let chrome_spec = f3m_workloads::table1()
        .into_iter()
        .find(|s| s.name == "chrome-scale")
        .expect("chrome-scale spec exists")
        .scaled(chrome_factor);
    let chrome_mods = module_set(&chrome_spec, "chrome", 3, 2);
    let chrome = run_workload(&chrome_mods, jobs, 10);
    print_outcome("chrome-scale", &chrome);
    assert!(
        chrome.global_saved >= chrome.per_module_saved,
        "global merging must never lose to per-module merging: global {} < per-module {}",
        chrome.global_saved,
        chrome.per_module_saved
    );

    let json = format!(
        "{{\"smoke\":{smoke},\"workloads\":[{},{}]}}",
        mm.json("multi-module"),
        chrome.json("chrome-scale"),
    );
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
        .join("BENCH_global.json");
    f3m_trace::write_with_dirs(&out_path, &json).expect("write BENCH_global.json");
    println!("global_dedup: wrote {}", out_path.display());
}
