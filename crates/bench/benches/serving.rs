//! `serve_throughput`: end-to-end daemon benchmarks over loopback TCP.
//!
//! Starts an in-process `f3m-serve` daemon per configuration, drives it
//! with synchronous clients, and measures the three request classes that
//! matter for the resident-corpus economics:
//!
//! - **ingest** — incremental indexing cost per module (fingerprint +
//!   per-shard bucket insertion, never a rebuild),
//! - **query** — top-k candidate lookups, with one client per worker to
//!   exercise the pool,
//! - **evict + reingest** — the steady-state update cycle a build system
//!   would issue when one translation unit changes.
//!
//! Results go to `results/BENCH_serve.json` (requests, wall time and
//! ns/request per jobs level); `--smoke` shrinks the sweep for CI.

use std::time::Instant;

use f3m_ir::module::Module;
use f3m_serve::protocol::{Request, RequestEnvelope};
use f3m_serve::{Client, ServeConfig, Server};

fn workload(name: &str, seed: u64, functions: usize) -> Module {
    let mut spec = f3m_workloads::mini_suite()[0].clone();
    spec.functions = functions;
    spec.seed = seed;
    let mut m = f3m_workloads::build_module(&spec);
    m.name = name.to_string();
    m
}

struct RunResult {
    jobs: usize,
    modules: usize,
    ingest_wall_ns: u128,
    queries: usize,
    query_wall_ns: u128,
    merge_wall_ns: u128,
    update_cycles: usize,
    update_wall_ns: u128,
}

fn drive(jobs: usize, modules: usize, functions: usize, queries_per_client: usize) -> RunResult {
    let server = Server::bind(ServeConfig { jobs, ..ServeConfig::default() }).expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());

    let mods: Vec<Module> =
        (0..modules).map(|i| workload(&format!("m{i}"), 100 + i as u64, functions)).collect();
    let texts: Vec<String> = mods.iter().map(f3m_ir::printer::print_module).collect();

    let mut c = Client::connect(addr).unwrap();
    let t0 = Instant::now();
    for (i, text) in texts.iter().enumerate() {
        c.call_expect(Request::Ingest { name: Some(format!("m{i}")), ir: text.clone() }, "ingested")
            .expect("ingest");
    }
    let ingest_wall_ns = t0.elapsed().as_nanos();

    // Query throughput: one synchronous client per worker.
    let t0 = Instant::now();
    let clients: Vec<_> = (0..jobs)
        .map(|ci| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for q in 0..queries_per_client {
                    let module = format!("m{}", (ci + q) % modules);
                    c.call_expect(
                        Request::Query { module, func: None, k: 3, if_epoch: None },
                        "candidates",
                    )
                        .expect("query");
                }
            })
        })
        .collect();
    for h in clients {
        h.join().unwrap();
    }
    let query_wall_ns = t0.elapsed().as_nanos();

    let t0 = Instant::now();
    c.call_expect(Request::Merge { strategy: "f3m".into(), jobs: Some(jobs) }, "report")
        .expect("merge");
    let merge_wall_ns = t0.elapsed().as_nanos();

    // Steady-state update: evict one module and re-ingest it.
    let update_cycles = 5;
    let t0 = Instant::now();
    for _ in 0..update_cycles {
        c.call_expect(Request::Evict { name: "m0".into() }, "evicted").expect("evict");
        c.call_expect(
            Request::Ingest { name: Some("m0".into()), ir: texts[0].clone() },
            "ingested",
        )
        .expect("reingest");
    }
    let update_wall_ns = t0.elapsed().as_nanos();

    c.request(&RequestEnvelope::of(Request::Shutdown)).expect("shutdown");
    handle.join().unwrap().expect("clean shutdown");

    RunResult {
        jobs,
        modules,
        ingest_wall_ns,
        queries: jobs * queries_per_client,
        query_wall_ns,
        merge_wall_ns,
        update_cycles,
        update_wall_ns,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (jobs_levels, modules, functions, queries): (&[usize], usize, usize, usize) =
        if smoke { (&[1, 2], 3, 16, 20) } else { (&[1, 2, 4, 8], 6, 48, 200) };

    let mut rows = Vec::new();
    for &jobs in jobs_levels {
        let r = drive(jobs, modules, functions, queries);
        let per_query = r.query_wall_ns / r.queries.max(1) as u128;
        println!(
            "serve_throughput/jobs={jobs:<2} ingest {:>8.2} ms  query {:>8.0} ns/req ({} reqs)  \
             merge {:>8.2} ms  update {:>8.2} ms/cycle",
            r.ingest_wall_ns as f64 / 1e6,
            per_query,
            r.queries,
            r.merge_wall_ns as f64 / 1e6,
            r.update_wall_ns as f64 / 1e6 / r.update_cycles as f64,
        );
        rows.push(format!(
            "{{\"jobs\":{},\"modules\":{},\"ingest_wall_ns\":{},\"queries\":{},\
             \"query_wall_ns\":{},\"query_ns_per_req\":{},\"merge_wall_ns\":{},\
             \"update_cycles\":{},\"update_wall_ns\":{}}}",
            r.jobs,
            r.modules,
            r.ingest_wall_ns,
            r.queries,
            r.query_wall_ns,
            per_query,
            r.merge_wall_ns,
            r.update_cycles,
            r.update_wall_ns
        ));
    }
    let json = format!(
        "{{\"smoke\":{smoke},\"modules\":{modules},\"functions_per_module\":{functions},\
         \"runs\":[{}]}}",
        rows.join(",")
    );
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
        .join("BENCH_serve.json");
    f3m_trace::write_with_dirs(&out_path, &json).expect("write BENCH_serve.json");
    println!("serve_throughput: wrote {}", out_path.display());
}
