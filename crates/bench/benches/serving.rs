//! `serve_throughput`: end-to-end daemon benchmarks over loopback TCP.
//!
//! Starts an in-process `f3m-serve` daemon per configuration, drives it
//! with synchronous clients, and measures the three request classes that
//! matter for the resident-corpus economics:
//!
//! - **ingest** — incremental indexing cost per module (fingerprint +
//!   per-shard bucket insertion, never a rebuild),
//! - **query** — top-k candidate lookups, with one client per worker to
//!   exercise the pool,
//! - **evict + reingest** — the steady-state update cycle a build system
//!   would issue when one translation unit changes.
//!
//! A fourth phase, **soak**, stresses the event loop itself: hundreds of
//! concurrent connections (≥500 in the full run) with mixed
//! ping/query/stats/ingest traffic, all held open simultaneously, with
//! admission control enabled. It records a p50/p99/p999 latency profile,
//! a log₂ latency histogram, and shed/error rates.
//!
//! Results go to `results/BENCH_serve.json` (requests, wall time and
//! ns/request per jobs level, plus the `soak` section); `--smoke`
//! shrinks the sweep for CI.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use f3m_ir::module::Module;
use f3m_serve::protocol::{Request, RequestEnvelope};
use f3m_serve::{AdmissionConfig, Client, ServeConfig, Server};

fn workload(name: &str, seed: u64, functions: usize) -> Module {
    let mut spec = f3m_workloads::mini_suite()[0].clone();
    spec.functions = functions;
    spec.seed = seed;
    let mut m = f3m_workloads::build_module(&spec);
    m.name = name.to_string();
    m
}

struct RunResult {
    jobs: usize,
    modules: usize,
    ingest_wall_ns: u128,
    queries: usize,
    query_wall_ns: u128,
    merge_wall_ns: u128,
    update_cycles: usize,
    update_wall_ns: u128,
}

fn drive(jobs: usize, modules: usize, functions: usize, queries_per_client: usize) -> RunResult {
    let server = Server::bind(ServeConfig { jobs, ..ServeConfig::default() }).expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());

    let mods: Vec<Module> =
        (0..modules).map(|i| workload(&format!("m{i}"), 100 + i as u64, functions)).collect();
    let texts: Vec<String> = mods.iter().map(f3m_ir::printer::print_module).collect();

    let mut c = Client::connect(addr).unwrap();
    let t0 = Instant::now();
    for (i, text) in texts.iter().enumerate() {
        c.call_expect(Request::Ingest { name: Some(format!("m{i}")), ir: text.clone() }, "ingested")
            .expect("ingest");
    }
    let ingest_wall_ns = t0.elapsed().as_nanos();

    // Query throughput: one synchronous client per worker.
    let t0 = Instant::now();
    let clients: Vec<_> = (0..jobs)
        .map(|ci| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for q in 0..queries_per_client {
                    let module = format!("m{}", (ci + q) % modules);
                    c.call_expect(
                        Request::Query { module, func: None, k: 3, if_epoch: None },
                        "candidates",
                    )
                        .expect("query");
                }
            })
        })
        .collect();
    for h in clients {
        h.join().unwrap();
    }
    let query_wall_ns = t0.elapsed().as_nanos();

    let t0 = Instant::now();
    c.call_expect(Request::Merge { strategy: "f3m".into(), jobs: Some(jobs) }, "report")
        .expect("merge");
    let merge_wall_ns = t0.elapsed().as_nanos();

    // Steady-state update: evict one module and re-ingest it.
    let update_cycles = 5;
    let t0 = Instant::now();
    for _ in 0..update_cycles {
        c.call_expect(Request::Evict { name: "m0".into() }, "evicted").expect("evict");
        c.call_expect(
            Request::Ingest { name: Some("m0".into()), ir: texts[0].clone() },
            "ingested",
        )
        .expect("reingest");
    }
    let update_wall_ns = t0.elapsed().as_nanos();

    c.request(&RequestEnvelope::of(Request::Shutdown)).expect("shutdown");
    handle.join().unwrap().expect("clean shutdown");

    RunResult {
        jobs,
        modules,
        ingest_wall_ns,
        queries: jobs * queries_per_client,
        query_wall_ns,
        merge_wall_ns,
        update_cycles,
        update_wall_ns,
    }
}

struct SoakResult {
    clients: usize,
    requests: usize,
    answered: usize,
    sheds: usize,
    errors: usize,
    wall_ns: u128,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    /// log₂ latency histogram: `histogram[i]` counts requests with
    /// latency in `[2^i, 2^(i+1))` microseconds (`histogram[0]` is <2µs).
    histogram: Vec<u64>,
    conns_open_hwm: u64,
}

/// Holds `clients` connections open simultaneously and drives mixed
/// traffic through all of them from a start barrier. Per-request
/// latencies are merged across clients for the percentile profile.
fn soak(clients: usize, requests_per_client: usize) -> SoakResult {
    let server = Server::bind(ServeConfig {
        jobs: 2,
        queue_cap: 256,
        // Admission on: deep-queue bursts shed instead of queueing
        // unboundedly, so the soak exercises the overload path too.
        admission: AdmissionConfig { queue_shed_depth: 192, ..AdmissionConfig::default() },
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());

    // One resident module so queries have something to rank against.
    let seed_mod = workload("soak0", 7, 12);
    let seed_text = f3m_ir::printer::print_module(&seed_mod);
    let mut admin = Client::connect(addr).unwrap();
    admin
        .call_expect(Request::Ingest { name: Some("soak0".into()), ir: seed_text }, "ingested")
        .expect("seed ingest");

    let barrier = Arc::new(Barrier::new(clients + 1));
    let mut threads = Vec::with_capacity(clients);
    for ci in 0..clients {
        let barrier = Arc::clone(&barrier);
        // Hundreds of mostly-idle clients: small stacks keep the soak
        // cheap on memory.
        let t = std::thread::Builder::new()
            .stack_size(128 * 1024)
            .spawn(move || {
                let mut c = Client::connect(addr).expect("soak connect");
                c.set_timeout(Some(std::time::Duration::from_secs(120))).unwrap();
                barrier.wait(); // all connections open before traffic starts
                let mut lat = Vec::with_capacity(requests_per_client);
                let mut sheds = 0usize;
                let mut errors = 0usize;
                for q in 0..requests_per_client {
                    let body = match (ci + q) % 8 {
                        0 => Request::Stats,
                        1 => Request::Query {
                            module: "soak0".into(),
                            func: None,
                            k: 3,
                            if_epoch: None,
                        },
                        _ => Request::Ping,
                    };
                    let t0 = Instant::now();
                    match c.request(&RequestEnvelope::of(body)) {
                        Ok(v) => {
                            lat.push(t0.elapsed().as_nanos() as u64);
                            match v.get("type").and_then(f3m_trace::Json::as_str) {
                                Some("busy") | Some("overloaded") => sheds += 1,
                                Some("error") => errors += 1,
                                _ => {}
                            }
                        }
                        Err(_) => errors += 1,
                    }
                }
                (lat, sheds, errors)
            })
            .expect("spawn soak client");
        threads.push(t);
    }
    barrier.wait();
    let t0 = Instant::now();
    let mut lat: Vec<u64> = Vec::with_capacity(clients * requests_per_client);
    let mut sheds = 0;
    let mut errors = 0;
    for t in threads {
        let (l, s, e) = t.join().expect("soak client panicked");
        lat.extend(l);
        sheds += s;
        errors += e;
    }
    let wall_ns = t0.elapsed().as_nanos();

    let stats = admin.call_expect(Request::Stats, "stats").expect("final stats");
    let conns_open_hwm = stats
        .get("server")
        .and_then(|s| s.get("conns_open_hwm"))
        .and_then(f3m_trace::Json::as_u64)
        .unwrap_or(0);
    admin.request(&RequestEnvelope::of(Request::Shutdown)).expect("shutdown");
    handle.join().unwrap().expect("clean shutdown");

    lat.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        let idx = ((lat.len() as f64 * p).ceil() as usize).clamp(1, lat.len()) - 1;
        lat[idx]
    };
    let mut histogram = vec![0u64; 24];
    for &ns in &lat {
        let us = ns / 1_000;
        let bucket = (64 - u64::leading_zeros(us.max(1)) as usize).min(histogram.len() - 1);
        histogram[bucket] += 1;
    }
    SoakResult {
        clients,
        requests: clients * requests_per_client,
        answered: lat.len(),
        sheds,
        errors,
        wall_ns,
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
        p999_ns: pct(0.999),
        histogram,
        conns_open_hwm,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (jobs_levels, modules, functions, queries): (&[usize], usize, usize, usize) =
        if smoke { (&[1, 2], 3, 16, 20) } else { (&[1, 2, 4, 8], 6, 48, 200) };

    let mut rows = Vec::new();
    for &jobs in jobs_levels {
        let r = drive(jobs, modules, functions, queries);
        let per_query = r.query_wall_ns / r.queries.max(1) as u128;
        println!(
            "serve_throughput/jobs={jobs:<2} ingest {:>8.2} ms  query {:>8.0} ns/req ({} reqs)  \
             merge {:>8.2} ms  update {:>8.2} ms/cycle",
            r.ingest_wall_ns as f64 / 1e6,
            per_query,
            r.queries,
            r.merge_wall_ns as f64 / 1e6,
            r.update_wall_ns as f64 / 1e6 / r.update_cycles as f64,
        );
        rows.push(format!(
            "{{\"jobs\":{},\"modules\":{},\"ingest_wall_ns\":{},\"queries\":{},\
             \"query_wall_ns\":{},\"query_ns_per_req\":{},\"merge_wall_ns\":{},\
             \"update_cycles\":{},\"update_wall_ns\":{}}}",
            r.jobs,
            r.modules,
            r.ingest_wall_ns,
            r.queries,
            r.query_wall_ns,
            per_query,
            r.merge_wall_ns,
            r.update_cycles,
            r.update_wall_ns
        ));
    }
    // Soak: ≥500 concurrent connections in the full run (the smoke run
    // scales down but keeps every code path, including sheds).
    let (soak_clients, soak_reqs) = if smoke { (64, 8) } else { (520, 20) };
    let s = soak(soak_clients, soak_reqs);
    println!(
        "serve_soak/clients={} answered {}/{} (sheds {}, errors {})  \
         p50 {:.1} µs  p99 {:.1} µs  p999 {:.1} µs  hwm {}",
        s.clients,
        s.answered,
        s.requests,
        s.sheds,
        s.errors,
        s.p50_ns as f64 / 1e3,
        s.p99_ns as f64 / 1e3,
        s.p999_ns as f64 / 1e3,
        s.conns_open_hwm,
    );
    assert!(
        s.conns_open_hwm >= s.clients as u64,
        "soak must actually hold all {} connections open concurrently (hwm {})",
        s.clients,
        s.conns_open_hwm
    );
    let histogram = s.histogram.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
    let soak_json = format!(
        "{{\"clients\":{},\"requests\":{},\"answered\":{},\"sheds\":{},\"errors\":{},\
         \"wall_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\
         \"latency_histogram_log2_us\":[{}],\"conns_open_hwm\":{}}}",
        s.clients,
        s.requests,
        s.answered,
        s.sheds,
        s.errors,
        s.wall_ns,
        s.p50_ns,
        s.p99_ns,
        s.p999_ns,
        histogram,
        s.conns_open_hwm
    );
    let json = format!(
        "{{\"smoke\":{smoke},\"modules\":{modules},\"functions_per_module\":{functions},\
         \"runs\":[{}],\"soak\":{}}}",
        rows.join(","),
        soak_json
    );
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
        .join("BENCH_serve.json");
    f3m_trace::write_with_dirs(&out_path, &json).expect("write BENCH_serve.json");
    println!("serve_throughput: wrote {}", out_path.display());
}
