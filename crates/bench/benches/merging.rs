//! Microbenchmarks for the merging pipeline's hot stages.
//!
//! These complement the per-figure binaries: where the binaries reproduce
//! paper artefacts end to end, these isolate the primitives so regressions
//! in any one stage are visible. The harness is hand-rolled (`harness =
//! false`, manual wall-clock timing) so the workspace builds offline with
//! no external bench framework; it reports median and mean ns/iter over a
//! fixed number of timed batches.
//!
//! The `pass_json` group additionally sweeps the full pass across `--jobs`
//! levels and writes `results/BENCH_pass.json` — per-stage wall time, wave
//! and cache counters per jobs level — so the perf trajectory is tracked
//! machine-readably across PRs (CI runs it in `--smoke` mode on the
//! smallest workload). The `alloc` group counts heap allocations through a
//! counting global allocator to pin the alignment hot path's
//! allocation-freedom.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use f3m_core::align::{
    linear_block_align, linear_block_align_with, needleman_wunsch, needleman_wunsch_with,
    AlignScratch,
};
use f3m_core::pass::{run_pass, PassConfig};
use f3m_fingerprint::adaptive::MergeParams;
use f3m_fingerprint::encode::encode_function;
use f3m_fingerprint::lsh::LshIndex;
use f3m_fingerprint::minhash::MinHashFingerprint;
use f3m_fingerprint::opcode_freq::OpcodeFingerprint;
use f3m_workloads::suite::{table1, WorkloadSpec};

/// Counts every heap allocation so the `alloc` group can report
/// allocations-per-call for the scratch-buffered alignment paths.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter is
// a relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations performed while running `f`.
fn count_allocs<T>(mut f: impl FnMut() -> T) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    std::hint::black_box(f());
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Times `f` over `batches` batches of `iters_per_batch` calls and prints
/// per-iteration statistics. A `std::hint::black_box` on each result keeps
/// the optimizer honest.
fn bench<T>(name: &str, batches: usize, iters_per_batch: usize, mut f: impl FnMut() -> T) {
    // Warm-up batch, untimed.
    for _ in 0..iters_per_batch {
        std::hint::black_box(f());
    }
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(batches);
    for _ in 0..batches {
        let t0 = Instant::now();
        for _ in 0..iters_per_batch {
            std::hint::black_box(f());
        }
        per_iter_ns.push(t0.elapsed().as_nanos() as f64 / iters_per_batch as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!("{name:<40} median {median:>12.0} ns/iter   mean {mean:>12.0} ns/iter");
}

fn module_for(name: &str, scale: f64) -> f3m_ir::module::Module {
    let spec: WorkloadSpec =
        table1().into_iter().find(|s| s.name == name).expect("known workload");
    f3m_workloads::suite::build_module(&spec.scaled(scale))
}

fn bench_fingerprints() {
    let m = module_for("401.bzip2", 1.0);
    let funcs = m.defined_functions();
    let encoded: Vec<Vec<u32>> =
        funcs.iter().map(|&f| encode_function(&m.types, m.function(f))).collect();

    bench("fingerprint/opcode_freq/build_all", 20, 10, || {
        funcs.iter().map(|&f| OpcodeFingerprint::of(m.function(f))).collect::<Vec<_>>()
    });
    for k in [25usize, 200] {
        bench(&format!("fingerprint/minhash/build_all/{k}"), 20, 5, || {
            encoded.iter().map(|e| MinHashFingerprint::of_encoded(e, k)).collect::<Vec<_>>()
        });
    }
}

fn bench_ranking() {
    let m = module_for("456.hmmer", 1.0);
    let funcs = m.defined_functions();
    let params = MergeParams::static_default();
    let encoded: Vec<Vec<u32>> =
        funcs.iter().map(|&f| encode_function(&m.types, m.function(f))).collect();
    let minhash: Vec<MinHashFingerprint> =
        encoded.iter().map(|e| MinHashFingerprint::of_encoded(e, params.k)).collect();
    let opcode: Vec<OpcodeFingerprint> =
        funcs.iter().map(|&f| OpcodeFingerprint::of(m.function(f))).collect();
    let mut index = LshIndex::new(params.lsh);
    for (i, fp) in minhash.iter().enumerate() {
        index.insert(i, fp.hashes());
    }

    bench("ranking/hyfm/exhaustive_nn", 20, 50, || {
        let mut best = (usize::MAX, f64::MIN);
        for (j, fp) in opcode.iter().enumerate().skip(1) {
            let s = opcode[0].similarity(fp);
            if s > best.1 {
                best = (j, s);
            }
        }
        best
    });
    bench("ranking/f3m/lsh_query", 20, 50, || {
        let (cands, _) = index.candidates(minhash[0].hashes(), 0);
        let mut best = (usize::MAX, f64::MIN);
        for j in cands {
            let s = minhash[0].similarity(&minhash[j]);
            if s > best.1 {
                best = (j, s);
            }
        }
        best
    });
}

fn bench_alignment() {
    let m = module_for("444.namd", 1.0);
    let funcs = m.defined_functions();
    let a = encode_function(&m.types, m.function(funcs[0]));
    let b2 = encode_function(&m.types, m.function(funcs[1]));
    bench("alignment/needleman_wunsch", 20, 20, || needleman_wunsch(&a, &b2));
    bench("alignment/linear", 20, 200, || linear_block_align(&a, &b2));
}

fn bench_full_pass() {
    let m = module_for("462.libquantum", 1.0);
    for (label, config) in [
        ("hyfm", PassConfig::hyfm()),
        ("f3m", PassConfig::f3m()),
        ("f3m_adaptive", PassConfig::f3m_adaptive()),
    ] {
        bench(&format!("pass/{label}"), 5, 1, || {
            let mut mm = m.clone();
            run_pass(&mut mm, &config)
        });
    }
}

/// Allocation counts for the alignment hot path, before (allocating
/// wrappers) vs after (scratch reuse) the `AlignScratch` change. Printed
/// per call, averaged over a batch so one-off buffer growth amortizes out.
fn bench_allocations() {
    let m = module_for("444.namd", 0.5);
    let funcs = m.defined_functions();
    let a = encode_function(&m.types, m.function(funcs[0]));
    let b = encode_function(&m.types, m.function(funcs[1]));
    const CALLS: u64 = 100;

    let allocating_nw = count_allocs(|| {
        for _ in 0..CALLS {
            std::hint::black_box(needleman_wunsch(&a, &b));
        }
    });
    let mut scratch = AlignScratch::new();
    let scratch_nw = count_allocs(|| {
        for _ in 0..CALLS {
            std::hint::black_box(needleman_wunsch_with(&mut scratch, &a, &b).matches);
        }
    });
    let allocating_lin = count_allocs(|| {
        for _ in 0..CALLS {
            std::hint::black_box(linear_block_align(&a, &b));
        }
    });
    let scratch_lin = count_allocs(|| {
        for _ in 0..CALLS {
            std::hint::black_box(linear_block_align_with(&mut scratch, &a, &b).matches);
        }
    });
    let per_call = |n: u64| n as f64 / CALLS as f64;
    println!("alloc/needleman_wunsch/allocating       {:>8.2} allocs/call", per_call(allocating_nw));
    println!("alloc/needleman_wunsch/scratch          {:>8.2} allocs/call", per_call(scratch_nw));
    println!("alloc/linear_block_align/allocating     {:>8.2} allocs/call", per_call(allocating_lin));
    println!("alloc/linear_block_align/scratch        {:>8.2} allocs/call", per_call(scratch_lin));
}

/// Runs the full pass across `--jobs` levels and strategies, printing a
/// summary and writing machine-readable per-stage timings, wave counters
/// and cache hit rates to `results/BENCH_pass.json`.
fn bench_pass_json(smoke: bool) {
    let (workload, scale, jobs_levels, reps): (&str, f64, &[usize], usize) = if smoke {
        ("470.lbm", 1.0, &[1, 2], 1)
    } else {
        ("chrome-scale", 0.05, &[1, 2, 4, 8], 3)
    };
    let m = module_for(workload, scale);
    type StrategyRow = (&'static str, fn() -> PassConfig);
    let strategies: &[StrategyRow] = &[
        ("hyfm", PassConfig::hyfm),
        ("f3m", PassConfig::f3m),
        ("f3m_adaptive", PassConfig::f3m_adaptive),
    ];
    let mut runs = Vec::new();
    for (label, make) in strategies {
        for &jobs in jobs_levels {
            // Keep the fastest rep per configuration (standard practice for
            // wall-clock medians of a deterministic computation).
            let mut best: Option<(u128, f3m_core::pass::MergeReport)> = None;
            for _ in 0..reps {
                let mut mm = m.clone();
                let t0 = Instant::now();
                let report = run_pass(&mut mm, &make().with_jobs(jobs));
                let wall = t0.elapsed().as_nanos();
                if best.as_ref().is_none_or(|(w, _)| wall < *w) {
                    best = Some((wall, report));
                }
            }
            let (wall_ns, report) = best.expect("at least one rep");
            let s = &report.stats;
            let spec_total = s.aligns_speculative.max(1);
            println!(
                "pass_json/{label}/jobs={jobs:<2} wall {:>9.1} ms  waves {:>3}  wasted {:>4.1}%  cache-hit {:>5.1}%",
                wall_ns as f64 / 1e6,
                s.waves,
                100.0 * s.aligns_wasted as f64 / spec_total as f64,
                100.0 * s.block_parts_cache_hits as f64
                    / (s.block_parts_cache_hits + s.block_parts_cache_misses).max(1) as f64,
            );
            runs.push(format!(
                "{{\"strategy\":\"{label}\",\"jobs\":{jobs},\"wall_ns\":{wall_ns},\"stats\":{}}}",
                s.to_json()
            ));
        }
    }
    let json = format!(
        "{{\"workload\":\"{workload}\",\"scale\":{scale},\"functions\":{},\"smoke\":{smoke},\"runs\":[{}]}}",
        m.defined_functions().len(),
        runs.join(",")
    );
    // Anchor at the workspace root's results/ dir (cargo runs benches with
    // the package dir as cwd, which would scatter the artefact).
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
        .join("BENCH_pass.json");
    f3m_trace::write_with_dirs(&out_path, &json).expect("write BENCH_pass.json");
    println!("pass_json: wrote {}", out_path.display());
}

fn main() {
    // `cargo bench -- <filter> [--smoke]` runs only groups whose name
    // contains the filter string; `--smoke` shrinks the pass_json sweep to
    // the smallest workload (the CI bench-smoke configuration).
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let filter = args.into_iter().find(|a| !a.starts_with('-')).unwrap_or_default();
    let groups: [(&str, fn()); 5] = [
        ("fingerprint", bench_fingerprints),
        ("ranking", bench_ranking),
        ("alignment", bench_alignment),
        ("alloc", bench_allocations),
        ("pass", bench_full_pass),
    ];
    for (name, f) in groups {
        if filter.is_empty() || name.contains(&filter) {
            f();
        }
    }
    if filter.is_empty() || "pass_json".contains(&filter) {
        bench_pass_json(smoke);
    }
}
