//! Criterion microbenchmarks for the merging pipeline's hot stages.
//!
//! These complement the per-figure binaries: where the binaries reproduce
//! paper artefacts end to end, these isolate the primitives so regressions
//! in any one stage are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use f3m_core::align::{linear_block_align, needleman_wunsch};
use f3m_core::pass::{run_pass, PassConfig};
use f3m_fingerprint::adaptive::MergeParams;
use f3m_fingerprint::encode::encode_function;
use f3m_fingerprint::lsh::LshIndex;
use f3m_fingerprint::minhash::MinHashFingerprint;
use f3m_fingerprint::opcode_freq::OpcodeFingerprint;
use f3m_workloads::suite::{table1, WorkloadSpec};

fn module_for(name: &str, scale: f64) -> f3m_ir::module::Module {
    let spec: WorkloadSpec =
        table1().into_iter().find(|s| s.name == name).expect("known workload");
    f3m_workloads::suite::build_module(&spec.scaled(scale))
}

fn bench_fingerprints(c: &mut Criterion) {
    let m = module_for("401.bzip2", 1.0);
    let funcs = m.defined_functions();
    let encoded: Vec<Vec<u32>> =
        funcs.iter().map(|&f| encode_function(&m.types, m.function(f))).collect();

    let mut g = c.benchmark_group("fingerprint");
    g.bench_function("opcode_freq/build_all", |b| {
        b.iter(|| {
            funcs
                .iter()
                .map(|&f| OpcodeFingerprint::of(m.function(f)))
                .collect::<Vec<_>>()
        })
    });
    for k in [25usize, 200] {
        g.bench_with_input(BenchmarkId::new("minhash/build_all", k), &k, |b, &k| {
            b.iter(|| {
                encoded
                    .iter()
                    .map(|e| MinHashFingerprint::of_encoded(e, k))
                    .collect::<Vec<_>>()
            })
        });
    }
    g.finish();
}

fn bench_ranking(c: &mut Criterion) {
    let m = module_for("456.hmmer", 1.0);
    let funcs = m.defined_functions();
    let params = MergeParams::static_default();
    let encoded: Vec<Vec<u32>> =
        funcs.iter().map(|&f| encode_function(&m.types, m.function(f))).collect();
    let minhash: Vec<MinHashFingerprint> =
        encoded.iter().map(|e| MinHashFingerprint::of_encoded(e, params.k)).collect();
    let opcode: Vec<OpcodeFingerprint> =
        funcs.iter().map(|&f| OpcodeFingerprint::of(m.function(f))).collect();
    let mut index = LshIndex::new(params.lsh);
    for (i, fp) in minhash.iter().enumerate() {
        index.insert(i, fp);
    }

    let mut g = c.benchmark_group("ranking");
    g.bench_function("hyfm/exhaustive_nn", |b| {
        b.iter(|| {
            let mut best = (usize::MAX, f64::MIN);
            for (j, fp) in opcode.iter().enumerate().skip(1) {
                let s = opcode[0].similarity(fp);
                if s > best.1 {
                    best = (j, s);
                }
            }
            best
        })
    });
    g.bench_function("f3m/lsh_query", |b| {
        b.iter(|| {
            let (cands, _) = index.candidates(&minhash[0], 0);
            let mut best = (usize::MAX, f64::MIN);
            for j in cands {
                let s = minhash[0].similarity(&minhash[j]);
                if s > best.1 {
                    best = (j, s);
                }
            }
            best
        })
    });
    g.finish();
}

fn bench_alignment(c: &mut Criterion) {
    let m = module_for("444.namd", 1.0);
    let funcs = m.defined_functions();
    let a = encode_function(&m.types, m.function(funcs[0]));
    let b2 = encode_function(&m.types, m.function(funcs[1]));
    let mut g = c.benchmark_group("alignment");
    g.bench_function("needleman_wunsch", |b| b.iter(|| needleman_wunsch(&a, &b2)));
    g.bench_function("linear", |b| b.iter(|| linear_block_align(&a, &b2)));
    g.finish();
}

fn bench_full_pass(c: &mut Criterion) {
    let m = module_for("462.libquantum", 1.0);
    let mut g = c.benchmark_group("pass");
    g.sample_size(10);
    for (label, config) in [
        ("hyfm", PassConfig::hyfm()),
        ("f3m", PassConfig::f3m()),
        ("f3m_adaptive", PassConfig::f3m_adaptive()),
    ] {
        g.bench_function(label, |b| {
            b.iter_batched(
                || m.clone(),
                |mut mm| run_pass(&mut mm, &config),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fingerprints,
    bench_ranking,
    bench_alignment,
    bench_full_pass
);
criterion_main!(benches);
