//! Microbenchmarks for the merging pipeline's hot stages.
//!
//! These complement the per-figure binaries: where the binaries reproduce
//! paper artefacts end to end, these isolate the primitives so regressions
//! in any one stage are visible. The harness is hand-rolled (`harness =
//! false`, manual wall-clock timing) so the workspace builds offline with
//! no external bench framework; it reports median and mean ns/iter over a
//! fixed number of timed batches.

use std::time::Instant;

use f3m_core::align::{linear_block_align, needleman_wunsch};
use f3m_core::pass::{run_pass, PassConfig};
use f3m_fingerprint::adaptive::MergeParams;
use f3m_fingerprint::encode::encode_function;
use f3m_fingerprint::lsh::LshIndex;
use f3m_fingerprint::minhash::MinHashFingerprint;
use f3m_fingerprint::opcode_freq::OpcodeFingerprint;
use f3m_workloads::suite::{table1, WorkloadSpec};

/// Times `f` over `batches` batches of `iters_per_batch` calls and prints
/// per-iteration statistics. A `std::hint::black_box` on each result keeps
/// the optimizer honest.
fn bench<T>(name: &str, batches: usize, iters_per_batch: usize, mut f: impl FnMut() -> T) {
    // Warm-up batch, untimed.
    for _ in 0..iters_per_batch {
        std::hint::black_box(f());
    }
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(batches);
    for _ in 0..batches {
        let t0 = Instant::now();
        for _ in 0..iters_per_batch {
            std::hint::black_box(f());
        }
        per_iter_ns.push(t0.elapsed().as_nanos() as f64 / iters_per_batch as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!("{name:<40} median {median:>12.0} ns/iter   mean {mean:>12.0} ns/iter");
}

fn module_for(name: &str, scale: f64) -> f3m_ir::module::Module {
    let spec: WorkloadSpec =
        table1().into_iter().find(|s| s.name == name).expect("known workload");
    f3m_workloads::suite::build_module(&spec.scaled(scale))
}

fn bench_fingerprints() {
    let m = module_for("401.bzip2", 1.0);
    let funcs = m.defined_functions();
    let encoded: Vec<Vec<u32>> =
        funcs.iter().map(|&f| encode_function(&m.types, m.function(f))).collect();

    bench("fingerprint/opcode_freq/build_all", 20, 10, || {
        funcs.iter().map(|&f| OpcodeFingerprint::of(m.function(f))).collect::<Vec<_>>()
    });
    for k in [25usize, 200] {
        bench(&format!("fingerprint/minhash/build_all/{k}"), 20, 5, || {
            encoded.iter().map(|e| MinHashFingerprint::of_encoded(e, k)).collect::<Vec<_>>()
        });
    }
}

fn bench_ranking() {
    let m = module_for("456.hmmer", 1.0);
    let funcs = m.defined_functions();
    let params = MergeParams::static_default();
    let encoded: Vec<Vec<u32>> =
        funcs.iter().map(|&f| encode_function(&m.types, m.function(f))).collect();
    let minhash: Vec<MinHashFingerprint> =
        encoded.iter().map(|e| MinHashFingerprint::of_encoded(e, params.k)).collect();
    let opcode: Vec<OpcodeFingerprint> =
        funcs.iter().map(|&f| OpcodeFingerprint::of(m.function(f))).collect();
    let mut index = LshIndex::new(params.lsh);
    for (i, fp) in minhash.iter().enumerate() {
        index.insert(i, fp);
    }

    bench("ranking/hyfm/exhaustive_nn", 20, 50, || {
        let mut best = (usize::MAX, f64::MIN);
        for (j, fp) in opcode.iter().enumerate().skip(1) {
            let s = opcode[0].similarity(fp);
            if s > best.1 {
                best = (j, s);
            }
        }
        best
    });
    bench("ranking/f3m/lsh_query", 20, 50, || {
        let (cands, _) = index.candidates(&minhash[0], 0);
        let mut best = (usize::MAX, f64::MIN);
        for j in cands {
            let s = minhash[0].similarity(&minhash[j]);
            if s > best.1 {
                best = (j, s);
            }
        }
        best
    });
}

fn bench_alignment() {
    let m = module_for("444.namd", 1.0);
    let funcs = m.defined_functions();
    let a = encode_function(&m.types, m.function(funcs[0]));
    let b2 = encode_function(&m.types, m.function(funcs[1]));
    bench("alignment/needleman_wunsch", 20, 20, || needleman_wunsch(&a, &b2));
    bench("alignment/linear", 20, 200, || linear_block_align(&a, &b2));
}

fn bench_full_pass() {
    let m = module_for("462.libquantum", 1.0);
    for (label, config) in [
        ("hyfm", PassConfig::hyfm()),
        ("f3m", PassConfig::f3m()),
        ("f3m_adaptive", PassConfig::f3m_adaptive()),
    ] {
        bench(&format!("pass/{label}"), 5, 1, || {
            let mut mm = m.clone();
            run_pass(&mut mm, &config)
        });
    }
}

fn main() {
    // `cargo bench -- <filter>` runs only groups whose name contains the
    // filter string.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_default();
    let groups: [(&str, fn()); 4] = [
        ("fingerprint", bench_fingerprints),
        ("ranking", bench_ranking),
        ("alignment", bench_alignment),
        ("pass", bench_full_pass),
    ];
    for (name, f) in groups {
        if filter.is_empty() || name.contains(&filter) {
            f();
        }
    }
}
