//! Figure 3: breakdown of HyFM's runtime across pipeline stages.
//!
//! The paper shows three programs (400.perlbench, Linux, Chrome) where the
//! ranking share grows from "small but not negligible" to "practically the
//! whole compilation overhead" as function count rises — the quadratic
//! ranking bottleneck that motivates F3M.

use f3m_bench::{fmt_dur, print_table, BenchOpts};
use f3m_core::pass::{run_pass, PassConfig};
use f3m_workloads::suite::table1;

fn main() {
    let opts = BenchOpts::from_args();
    let picks = ["400.perlbench", "linux-scale", "chrome-scale"];
    let mut rows = Vec::new();
    for name in picks {
        let spec = table1().into_iter().find(|s| s.name == name).unwrap();
        let mut m = opts.build(&spec);
        let funcs = m.defined_functions().len();
        let report = run_pass(&mut m, &PassConfig::hyfm());
        let s = &report.stats;
        let total = s.total_time().as_secs_f64().max(1e-9);
        let pct = |d: std::time::Duration| format!("{:.1}%", 100.0 * d.as_secs_f64() / total);
        rows.push(vec![
            name.to_string(),
            funcs.to_string(),
            fmt_dur(s.total_time()),
            pct(s.preprocess),
            pct(s.rank.success),
            pct(s.rank.fail),
            pct(s.align.success),
            pct(s.align.fail),
            pct(s.codegen.success),
            pct(s.codegen.fail),
        ]);
    }
    print_table(
        "Figure 3: HyFM stage breakdown (share of merge-pass time)",
        &[
            "benchmark",
            "functions",
            "pass total",
            "preprocess",
            "rank ok",
            "rank fail",
            "align ok",
            "align fail",
            "codegen ok",
            "codegen fail",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: ranking (ok+fail) dominates as the function count grows,\n\
         and most ranking/codegen time is spent on pairs that never commit."
    );
}
