//! Figure 9: contribution of F3M-selected pairs to code-size reduction and
//! merge overhead, accumulated by MinHash similarity.
//!
//! The paper's observation on Linux: low-similarity pairs contribute most
//! of the *overhead* and little of the *reduction* — the basis for the
//! adaptive similarity threshold of Section III-D.

use f3m_bench::{print_table, BenchOpts};
use f3m_core::pass::{run_pass, PassConfig};
use f3m_workloads::suite::table1;

fn main() {
    let opts = BenchOpts::from_args();
    let spec = table1().into_iter().find(|s| s.name == "linux-scale").unwrap();
    let mut m = opts.build(&spec);
    println!("workload: {} ({} functions)", spec.name, m.defined_functions().len());
    // Static F3M with threshold 0 so every selected pair is attempted.
    let report = run_pass(&mut m, &PassConfig::f3m());

    const BINS: usize = 10;
    let mut savings = [0f64; BINS];
    let mut overhead = [0f64; BINS];
    let mut count = [0u32; BINS];
    for a in &report.attempts {
        let b = ((a.similarity * BINS as f64) as usize).min(BINS - 1);
        savings[b] += a.size_delta.max(0) as f64;
        overhead[b] += a.time.as_secs_f64();
        count[b] += 1;
    }
    let total_savings: f64 = savings.iter().sum::<f64>().max(1e-9);
    let total_overhead: f64 = overhead.iter().sum::<f64>().max(1e-9);

    let mut rows = Vec::new();
    let mut cum_savings = 0.0;
    let mut cum_overhead = 0.0;
    for i in 0..BINS {
        cum_savings += savings[i];
        cum_overhead += overhead[i];
        rows.push(vec![
            format!("≤ {:.1}", (i + 1) as f64 / BINS as f64),
            count[i].to_string(),
            format!("{:.1}%", 100.0 * savings[i] / total_savings),
            format!("{:.1}%", 100.0 * overhead[i] / total_overhead),
            format!("{:.1}%", 100.0 * cum_savings / total_savings),
            format!("{:.1}%", 100.0 * cum_overhead / total_overhead),
        ]);
    }
    print_table(
        "Figure 9: contribution by fingerprint similarity",
        &[
            "similarity",
            "pairs",
            "size reduction",
            "merge overhead",
            "cum. reduction",
            "cum. overhead",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: the low-similarity rows carry a large share of the\n\
         overhead and a small share of the reduction; high-similarity rows the\n\
         opposite — merging dissimilar pairs is often not worth the effort."
    );
}
