//! Figure 14: similarity-threshold sweep.
//!
//! Average compile-time reduction and object-size increase relative to
//! `t = 0.0`, across the suite minus the three largest workloads, plus an
//! oracle that picks the best threshold per benchmark (minimizing compile
//! time subject to < 0.1% size loss).

use f3m_bench::{backend_cost, print_table, BenchOpts};
use f3m_core::pass::{run_pass, PassConfig, Strategy};
use f3m_fingerprint::adaptive::MergeParams;
use f3m_workloads::suite::table1;

const THRESHOLDS: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

fn main() {
    let opts = BenchOpts::from_args();
    let mut specs = table1();
    specs.sort_by_key(|s| s.functions);
    specs.truncate(specs.len() - 3); // drop the three largest, as the paper does

    // results[t][bench] = (total_time_secs, size_after)
    let mut results: Vec<Vec<(f64, u64)>> = vec![Vec::new(); THRESHOLDS.len()];
    let mut names = Vec::new();
    for spec in &specs {
        let m = opts.build(spec);
        names.push(spec.name);
        for (ti, &t) in THRESHOLDS.iter().enumerate() {
            let mut params = MergeParams::static_default();
            params.threshold = t;
            let config =
                PassConfig { strategy: Strategy::F3m(params), ..Default::default() };
            let mut mm = m.clone();
            let t0 = std::time::Instant::now();
            let report = run_pass(&mut mm, &config);
            let pass = t0.elapsed();
            let total = pass + backend_cost(&mm);
            results[ti].push((total.as_secs_f64(), report.stats.size_after));
        }
    }

    let n = names.len() as f64;
    let mut rows = Vec::new();
    for (ti, &t) in THRESHOLDS.iter().enumerate() {
        let mut time_red = 0.0;
        let mut size_inc = 0.0;
        for (&(t0_time, t0_size), &(tt, ts)) in results[0].iter().zip(&results[ti]) {
            time_red += 100.0 * (1.0 - tt / t0_time);
            size_inc += 100.0 * (ts as f64 / t0_size as f64 - 1.0);
        }
        rows.push(vec![
            format!("{t:.1}"),
            format!("{:+.2}%", time_red / n),
            format!("{:+.3}%", size_inc / n),
        ]);
    }

    // Oracle: per benchmark, the largest threshold whose size loss < 0.1%.
    let mut oracle_time = 0.0;
    let mut oracle_size = 0.0;
    let mut oracle_choices = Vec::new();
    for b in 0..names.len() {
        let (t0_time, t0_size) = results[0][b];
        let mut best = (0usize, 0.0f64);
        for (ti, per_bench) in results.iter().enumerate() {
            let (tt, ts) = per_bench[b];
            let size_loss = 100.0 * (ts as f64 / t0_size as f64 - 1.0);
            let time_red = 100.0 * (1.0 - tt / t0_time);
            if size_loss < 0.1 && time_red > best.1 {
                best = (ti, time_red);
            }
        }
        let (tt, ts) = results[best.0][b];
        oracle_time += 100.0 * (1.0 - tt / t0_time);
        oracle_size += 100.0 * (ts as f64 / t0_size as f64 - 1.0);
        oracle_choices.push((names[b], THRESHOLDS[best.0]));
    }
    rows.push(vec![
        "oracle".to_string(),
        format!("{:+.2}%", oracle_time / n),
        format!("{:+.3}%", oracle_size / n),
    ]);

    print_table(
        "Figure 14: threshold sweep (relative to t = 0.0)",
        &["threshold", "avg compile-time reduction", "avg size increase"],
        &rows,
    );
    let mut histogram = std::collections::BTreeMap::new();
    for (_, t) in &oracle_choices {
        *histogram.entry(format!("{t:.1}")).or_insert(0u32) += 1;
    }
    println!("\noracle per-benchmark threshold choices: {histogram:?}");
    println!(
        "Paper: fixed t = 0.1 buys ~1.5% compile time at < 0.1% size cost;\n\
         the oracle raises that to ~2.3% — motivating the adaptive policy."
    );
}
