//! Figure 11: linked object-size reduction per benchmark.
//!
//! HyFM vs F3M-static vs F3M-adaptive, benchmarks ordered by function
//! count. The paper reports F3M matching or beating HyFM (7.6% average
//! reduction) while attempting fewer merges.

use f3m_bench::{print_table, standard_strategies, run_strategy, BenchOpts};
use f3m_workloads::suite::table1;

fn main() {
    let opts = BenchOpts::from_args();
    let mut rows = Vec::new();
    let mut avgs = vec![0.0f64; standard_strategies().len()];
    let mut counts = vec![0usize; standard_strategies().len()];
    for spec in table1() {
        // HyFM ranking is quadratic; skip it for the largest workloads in
        // default mode (the paper needed 46 hours for Chrome).
        let m = opts.build(&spec);
        let n = m.defined_functions().len();
        let mut row = vec![spec.name.to_string(), n.to_string()];
        for (i, (label, config)) in standard_strategies().iter().enumerate() {
            if *label == "hyfm" && n > 30_000 && !opts.full {
                row.push("(skipped)".into());
                continue;
            }
            let r = run_strategy(&m, label, config);
            let red = r.report.stats.size_reduction() * 100.0;
            avgs[i] += red;
            counts[i] += 1;
            row.push(format!("{red:.2}%"));
        }
        rows.push(row);
    }
    rows.push(vec![
        "AVERAGE".into(),
        "".into(),
        format!("{:.2}%", avgs[0] / counts[0].max(1) as f64),
        format!("{:.2}%", avgs[1] / counts[1].max(1) as f64),
        format!("{:.2}%", avgs[2] / counts[2].max(1) as f64),
    ]);
    print_table(
        "Figure 11: object size reduction (higher is better)",
        &["benchmark", "functions", "hyfm", "f3m", "f3m-adaptive"],
        &rows,
    );
    println!(
        "\nPaper: F3M averages ~7.6% vs bug-fixed HyFM's ~7.2%, with F3M\n\
         matching or beating HyFM on most benchmarks."
    );
}
