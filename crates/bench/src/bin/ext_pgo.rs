//! Extension experiment: profile-guided candidate selection.
//!
//! Section IV-F of the paper proposes using profiling information "to
//! influence candidate selection towards infrequently used functions",
//! predicting it "would eliminate all or almost all performance overhead".
//! This binary implements and evaluates that proposal: a profile collected
//! by running each workload's driver biases near-tied candidate choices
//! toward cold functions, and we compare dynamic-instruction overhead and
//! size reduction with and without the profile.

use f3m_bench::{print_table, BenchOpts};
use f3m_core::pass::{run_pass, PassConfig};
use f3m_core::profile::Profile;
use f3m_interp::{Interpreter, Limits, Val};
use f3m_workloads::suite::{table1, SizeClass};

fn driver_steps(m: &f3m_ir::module::Module) -> (u64, u64) {
    let mut steps = 0;
    let mut sum = 0;
    for arg in [3i64, 77, 12345] {
        let mut i = Interpreter::with_limits(
            m,
            Limits { fuel: 200_000_000, memory: 1 << 24, max_depth: 512 },
        );
        let out = i.call_by_name("__driver", &[Val::Int(arg)]).expect("driver runs");
        steps += out.steps;
        sum ^= out.checksum;
    }
    (steps, sum)
}

fn collect_profile(m: &f3m_ir::module::Module) -> Profile {
    let mut i = Interpreter::with_limits(
        m,
        Limits { fuel: 200_000_000, memory: 1 << 24, max_depth: 512 },
    );
    for arg in [3i64, 77, 12345] {
        let _ = i.call_by_name("__driver", &[Val::Int(arg)]);
    }
    Profile::from_counts(
        m.defined_functions().into_iter().map(|f| (f, i.func_steps(f))),
    )
}

fn main() {
    let opts = BenchOpts::from_args();
    let specs: Vec<_> =
        table1().into_iter().filter(|s| s.class == SizeClass::Small).collect();

    let mut rows = Vec::new();
    let mut sums = [0.0f64; 4]; // overhead plain, overhead pgo, red plain, red pgo
    for spec in &specs {
        let m = opts.build(spec);
        let (base_steps, base_sum) = driver_steps(&m);
        let profile = collect_profile(&m);

        let mut plain = m.clone();
        let plain_report = run_pass(&mut plain, &PassConfig::f3m());
        let (plain_steps, plain_sum) = driver_steps(&plain);
        assert_eq!(plain_sum, base_sum, "plain merge changed behaviour");

        let mut pgo = m.clone();
        let pgo_report = run_pass(&mut pgo, &PassConfig::f3m().with_profile(profile));
        let (pgo_steps, pgo_sum) = driver_steps(&pgo);
        assert_eq!(pgo_sum, base_sum, "pgo merge changed behaviour");

        let plain_over = 100.0 * (plain_steps as f64 / base_steps as f64 - 1.0);
        let pgo_over = 100.0 * (pgo_steps as f64 / base_steps as f64 - 1.0);
        let plain_red = plain_report.stats.size_reduction() * 100.0;
        let pgo_red = pgo_report.stats.size_reduction() * 100.0;
        sums[0] += plain_over;
        sums[1] += pgo_over;
        sums[2] += plain_red;
        sums[3] += pgo_red;
        rows.push(vec![
            spec.name.to_string(),
            format!("{plain_over:+.2}%"),
            format!("{pgo_over:+.2}%"),
            format!("{plain_red:.2}%"),
            format!("{pgo_red:.2}%"),
        ]);
    }
    let n = specs.len() as f64;
    rows.push(vec![
        "AVERAGE".into(),
        format!("{:+.2}%", sums[0] / n),
        format!("{:+.2}%", sums[1] / n),
        format!("{:.2}%", sums[2] / n),
        format!("{:.2}%", sums[3] / n),
    ]);
    print_table(
        "Extension (Section IV-F): profile-guided candidate selection",
        &["benchmark", "overhead f3m", "overhead f3m+pgo", "size red f3m", "size red f3m+pgo"],
        &rows,
    );
    println!(
        "\nExpected shape: the profile-guided variant trades little or no size\n\
         reduction for lower dynamic-instruction overhead, by steering merges\n\
         toward cold functions when candidates are nearly tied."
    );
}
