//! Figures 12 and 13: end-to-end compile-time overhead and merge-pass
//! stage breakdown.
//!
//! Figure 12 compares total compilation (merge pass + downstream pipeline)
//! against a no-merging baseline; the paper finds F3M near-neutral or
//! faster for small programs and dramatically faster than HyFM for large
//! ones (23x on Chrome, 597x merge-time with the adaptive variant).
//! Figure 13 normalizes each strategy's per-stage pass time to HyFM's
//! total on the same benchmark.

use f3m_bench::{backend_cost, fmt_dur, print_table, run_strategy, standard_strategies, BenchOpts};
use f3m_workloads::suite::table1;

fn main() {
    let opts = BenchOpts::from_args();
    let mut fig12_rows = Vec::new();
    let mut fig13_rows = Vec::new();
    for spec in table1() {
        let m = opts.build(&spec);
        let n = m.defined_functions().len();
        let baseline = backend_cost(&m);

        let mut row12 = vec![spec.name.to_string(), n.to_string(), fmt_dur(baseline)];
        let mut hyfm_total: Option<f64> = None;
        for (label, config) in standard_strategies() {
            if label == "hyfm" && n > 30_000 && !opts.full {
                row12.push("(skipped)".into());
                continue;
            }
            let r = run_strategy(&m, label, &config);
            let overhead =
                100.0 * (r.total_time().as_secs_f64() / baseline.as_secs_f64() - 1.0);
            row12.push(format!("{overhead:+.1}%"));

            // Figure 13 rows: per-stage share normalized to HyFM total.
            let s = &r.report.stats;
            if label == "hyfm" {
                hyfm_total = Some(s.total_time().as_secs_f64());
            }
            if let Some(ht) = hyfm_total {
                let ht = ht.max(1e-9);
                let pct = |d: std::time::Duration| {
                    format!("{:.1}%", 100.0 * d.as_secs_f64() / ht)
                };
                fig13_rows.push(vec![
                    spec.name.to_string(),
                    label.to_string(),
                    pct(s.preprocess),
                    pct(s.rank.total()),
                    pct(s.align.total()),
                    pct(s.codegen.total()),
                    format!("{:.1}%", 100.0 * s.total_time().as_secs_f64() / ht),
                ]);
            }
        }
        fig12_rows.push(row12);
    }
    print_table(
        "Figure 12: compile-time overhead vs no-merging baseline (lower is better)",
        &["benchmark", "functions", "baseline", "hyfm", "f3m", "f3m-adaptive"],
        &fig12_rows,
    );
    print_table(
        "Figure 13: merge-pass stage times, normalized to HyFM total per benchmark",
        &["benchmark", "strategy", "preprocess", "rank", "align", "codegen", "total"],
        &fig13_rows,
    );
    println!(
        "\nExpected shape: for small programs the three strategies are close;\n\
         for large ones HyFM's rank column explodes while F3M's stays small,\n\
         and the adaptive variant cuts the remaining overhead further."
    );
}
