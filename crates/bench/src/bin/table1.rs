//! Table I: the workload inventory.
//!
//! Prints each synthetic workload with its generated function count, total
//! instructions and estimated text size, alongside the paper-scale target
//! it mirrors. Run with `--full` to build at unscaled Table I sizes.

use f3m_bench::{print_table, BenchOpts};
use f3m_workloads::suite::{summarize, table1};

fn main() {
    let opts = BenchOpts::from_args();
    let mut rows = Vec::new();
    for spec in table1() {
        let scaled = spec.scaled(opts.factor_for(&spec));
        let (_, s) = summarize(&scaled);
        rows.push(vec![
            spec.name.to_string(),
            format!("{:?}", spec.class),
            spec.functions.to_string(),
            s.functions.to_string(),
            s.instructions.to_string(),
            format!("{:.1} KiB", s.size_bytes as f64 / 1024.0),
        ]);
    }
    print_table(
        "Table I: workloads",
        &["benchmark", "class", "paper-scale fns", "built fns", "instructions", "text size"],
        &rows,
    );
    println!("\n(`built fns` includes the external @__driver; scale with --scale/--full)");
}
