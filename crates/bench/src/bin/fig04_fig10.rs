//! Figures 4 and 10: fingerprint similarity vs ground-truth alignment.
//!
//! For a large set of function pairs, plots (as an ASCII heatmap) the
//! normalized similarity of each fingerprint against the Needleman–Wunsch
//! alignment ratio, and reports the Pearson correlations. The paper
//! measures R = 0.20 for HyFM's opcode-frequency fingerprint (Fig. 4) and
//! R = 0.616 for the MinHash fingerprint (Fig. 10) on the Linux kernel —
//! about 3x higher.

use f3m_bench::{print_heatmap, BenchOpts};
use f3m_core::analysis::{heatmap, pearson, sample_pairs};
use f3m_workloads::suite::table1;

fn main() {
    let opts = BenchOpts::from_args();
    // A medium workload keeps the all-pairs alignment tractable; stride
    // subsamples the quadratic pair space.
    let spec = table1().into_iter().find(|s| s.name == "400.perlbench").unwrap();
    let m = opts.build(&spec);
    let n = m.defined_functions().len();
    let total_pairs = n * (n - 1) / 2;
    let target_samples = 150_000usize;
    let stride = (total_pairs / target_samples).max(1);
    println!(
        "sampling {} of {} pairs (stride {}) from {} ({} functions)",
        total_pairs / stride,
        total_pairs,
        stride,
        spec.name,
        n
    );
    let samples = sample_pairs(&m, 200, stride);

    let align: Vec<f64> = samples.iter().map(|s| s.align_ratio).collect();
    let opcode: Vec<f64> = samples.iter().map(|s| s.sim_opcode).collect();
    let minhash: Vec<f64> = samples.iter().map(|s| s.sim_minhash).collect();

    let r_opcode = pearson(&opcode, &align);
    let r_minhash = pearson(&minhash, &align);

    let grid_op = heatmap(
        &samples.iter().map(|s| (s.sim_opcode, s.align_ratio)).collect::<Vec<_>>(),
        40,
    );
    print_heatmap(
        &format!("Figure 4: opcode-frequency similarity vs alignment (R = {r_opcode:.3})"),
        &grid_op,
        "opcode fingerprint similarity",
        "alignment ratio",
    );

    let grid_mh = heatmap(
        &samples.iter().map(|s| (s.sim_minhash, s.align_ratio)).collect::<Vec<_>>(),
        40,
    );
    print_heatmap(
        &format!("Figure 10: MinHash similarity vs alignment (R = {r_minhash:.3})"),
        &grid_mh,
        "MinHash estimated Jaccard",
        "alignment ratio",
    );

    // The corner cases the paper discusses for Figure 10.
    let identical_no_align = samples
        .iter()
        .filter(|s| s.sim_minhash >= 0.999 && s.align_ratio < 0.05)
        .count();
    let disjoint_full_align = samples
        .iter()
        .filter(|s| s.sim_minhash <= 0.001 && s.align_ratio > 0.95)
        .count();
    println!("\npaper-vs-measured summary:");
    println!("  R(opcode)  paper 0.20  measured {r_opcode:.3}");
    println!("  R(minhash) paper 0.616 measured {r_minhash:.3}");
    println!(
        "  ratio paper ~3.1x, measured {:.1}x",
        r_minhash / r_opcode.max(1e-9)
    );
    println!("  identical-fingerprint/no-alignment pairs: {identical_no_align}");
    println!("  zero-fingerprint/full-alignment pairs:    {disjoint_full_align}");
}
