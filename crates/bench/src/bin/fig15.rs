//! Figure 15: fingerprint-size (k) and LSH-rows (r) sweep.
//!
//! Average compile time and object size across a suite subset for
//! k ∈ {25, 50, 100, 200} and r ∈ {1, 2, 4, 8}, relative to the default
//! configuration (k = 200, r = 2). The paper finds larger r cuts
//! compile time rapidly but loses size reduction (r = 8 loses most of it),
//! while k gives finer-grained control — which is why the adaptive policy
//! fixes r = 2 and scales k (= 2b).

use f3m_bench::{backend_cost, print_table, BenchOpts};
use f3m_core::pass::{run_pass, PassConfig, Strategy};
use f3m_fingerprint::adaptive::MergeParams;
use f3m_ir::module::Module;
use f3m_workloads::suite::table1;

const KS: [usize; 4] = [25, 50, 100, 200];
const RS: [usize; 4] = [1, 2, 4, 8];

fn measure(m: &Module, k: usize, r: usize) -> (f64, u64) {
    let params = MergeParams::custom(k, r, 0.0, 100);
    let config = PassConfig { strategy: Strategy::F3m(params), ..Default::default() };
    let mut mm = m.clone();
    let t0 = std::time::Instant::now();
    let _report = run_pass(&mut mm, &config);
    let total = t0.elapsed() + backend_cost(&mm);
    (total.as_secs_f64(), f3m_ir::size::module_size(&mm))
}

fn main() {
    let opts = BenchOpts::from_args();
    let mut specs = table1();
    specs.sort_by_key(|s| s.functions);
    specs.truncate(10); // small/medium subset keeps the 16-point sweep quick

    let modules: Vec<Module> = specs.iter().map(|s| opts.build(s)).collect();
    // Reference point: the paper's default k=200, r=2.
    let base: Vec<(f64, u64)> = modules.iter().map(|m| measure(m, 200, 2)).collect();

    let mut rows = Vec::new();
    for &r in &RS {
        for &k in &KS {
            if k < r {
                continue;
            }
            let mut sum_time = 0.0;
            let mut sum_size = 0.0;
            for (bi, m) in modules.iter().enumerate() {
                let (t, size) = measure(m, k, r);
                let (bt, bs) = base[bi];
                sum_time += 100.0 * (t / bt - 1.0);
                sum_size += 100.0 * (size as f64 / bs as f64 - 1.0);
            }
            let n = modules.len() as f64;
            rows.push(vec![
                r.to_string(),
                k.to_string(),
                format!("{:+.2}%", sum_time / n),
                format!("{:+.3}%", sum_size / n),
            ]);
        }
    }
    print_table(
        "Figure 15: LSH parameter sweep (relative to k=200, r=2)",
        &["rows r", "fingerprint k", "avg compile time", "avg object size"],
        &rows,
    );
    println!(
        "\nExpected shape: size grows (reduction lost) as r rises toward 8 and\n\
         as k shrinks; compile time falls in the same directions, with k the\n\
         finer-grained of the two knobs."
    );
}
