//! Figure 6: similarity histogram of HyFM-selected pairs, split by
//! profitability.
//!
//! The paper's point: HyFM's nearest-neighbour pairs spread across the
//! whole similarity range, and ~8-10% of even the *low-similarity* pairs
//! are profitable — so a naive approximate search over the opcode
//! fingerprint space would lose real merges. (F3M fixes the metric, not
//! just the search.)

use f3m_bench::{print_table, BenchOpts};
use f3m_core::pass::{run_pass, PassConfig};
use f3m_workloads::suite::table1;

fn main() {
    let opts = BenchOpts::from_args();
    let spec = table1().into_iter().find(|s| s.name == "400.perlbench").unwrap();
    let mut m = opts.build(&spec);
    let report = run_pass(&mut m, &PassConfig::hyfm());

    const BINS: usize = 10;
    let mut profitable = [0u32; BINS];
    let mut unprofitable = [0u32; BINS];
    for a in &report.attempts {
        let b = ((a.similarity * BINS as f64) as usize).min(BINS - 1);
        if a.committed {
            profitable[b] += 1;
        } else {
            unprofitable[b] += 1;
        }
    }
    let mut rows = Vec::new();
    for i in 0..BINS {
        let total = profitable[i] + unprofitable[i];
        let rate = if total == 0 {
            "-".to_string()
        } else {
            format!("{:.0}%", 100.0 * profitable[i] as f64 / total as f64)
        };
        rows.push(vec![
            format!("[{:.1}, {:.1})", i as f64 / BINS as f64, (i + 1) as f64 / BINS as f64),
            profitable[i].to_string(),
            unprofitable[i].to_string(),
            rate,
        ]);
    }
    print_table(
        "Figure 6: HyFM-selected pair similarity vs profitability",
        &["similarity bin", "profitable", "unprofitable", "success rate"],
        &rows,
    );

    let low_sim_profitable: u32 = profitable[..5].iter().sum();
    let all_profitable: u32 = profitable.iter().sum();
    println!(
        "\nprofitable pairs with similarity < 0.5: {} of {} ({:.0}%) — paper reports ~10%",
        low_sim_profitable,
        all_profitable,
        100.0 * low_sim_profitable as f64 / all_profitable.max(1) as f64,
    );
}
