//! Figure 16: the bucket-search cap.
//!
//! Over-populated LSH buckets (very common instruction subsequences) make
//! the within-bucket search quadratic. The paper shows that on Linux,
//! buckets with ≥128 entries are under 0.03% of all buckets yet absorb
//! ~75% of fingerprint comparisons — and that capping comparisons per
//! bucket at 100 (or even 2) costs no code size while cutting compile
//! time.

use f3m_bench::{fmt_dur, print_table, BenchOpts};
use f3m_core::pass::{run_pass, PassConfig, Strategy};
use f3m_fingerprint::adaptive::MergeParams;
use f3m_fingerprint::encode::encode_function;
use f3m_fingerprint::lsh::{LshIndex, LshParams};
use f3m_fingerprint::minhash::MinHashFingerprint;
use f3m_workloads::suite::table1;

const CAPS: [usize; 5] = [1, 2, 10, 100, usize::MAX];

fn main() {
    let opts = BenchOpts::from_args();
    let spec = table1().into_iter().find(|s| s.name == "linux-scale").unwrap();
    let m = opts.build(&spec);
    let n = m.defined_functions().len();
    println!("workload: {} ({} functions)", spec.name, n);

    // Bucket population census (uncapped index, default banding).
    let params = MergeParams::static_default();
    let mut index: LshIndex<usize> =
        LshIndex::new(LshParams { bucket_cap: usize::MAX, ..params.lsh });
    let fps: Vec<MinHashFingerprint> = m
        .defined_functions()
        .iter()
        .map(|&f| {
            MinHashFingerprint::of_encoded(&encode_function(&m.types, m.function(f)), params.k)
        })
        .collect();
    for (i, fp) in fps.iter().enumerate() {
        index.insert(i, fp.hashes());
    }
    let sizes = index.bucket_sizes();
    let total_buckets = sizes.len();
    let over = sizes.iter().filter(|&&s| s >= 128).count();
    let comparisons: u64 = sizes.iter().map(|&s| (s as u64) * (s as u64 - 1) / 2).sum();
    let over_comparisons: u64 = sizes
        .iter()
        .filter(|&&s| s >= 128)
        .map(|&s| (s as u64) * (s as u64 - 1) / 2)
        .sum();
    println!(
        "buckets: {total_buckets}; over-populated (≥128): {over} ({:.3}%); \
         share of pairwise comparisons in them: {:.1}%",
        100.0 * over as f64 / total_buckets as f64,
        100.0 * over_comparisons as f64 / comparisons.max(1) as f64,
    );

    // Cap sweep.
    let mut rows = Vec::new();
    for cap in CAPS {
        let mut p = MergeParams::static_default();
        p.lsh.bucket_cap = cap;
        let config = PassConfig { strategy: Strategy::F3m(p), ..Default::default() };
        let mut mm = m.clone();
        let t0 = std::time::Instant::now();
        let report = run_pass(&mut mm, &config);
        let pass = t0.elapsed();
        rows.push(vec![
            if cap == usize::MAX { "∞".to_string() } else { cap.to_string() },
            fmt_dur(pass),
            report.stats.fingerprint_comparisons.to_string(),
            format!("{:.2}%", report.stats.size_reduction() * 100.0),
            report.stats.merges_committed.to_string(),
        ]);
    }
    print_table(
        "Figure 16: bucket-cap sweep on linux-scale",
        &["cap", "merge-pass time", "fingerprint comparisons", "size reduction", "merges"],
        &rows,
    );
    println!(
        "\nExpected shape: size reduction is flat across caps (highly similar\n\
         functions share many buckets, so capped buckets still match through\n\
         less crowded ones) while comparisons and pass time drop with the cap."
    );
}
