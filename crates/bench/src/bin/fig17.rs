//! Figure 17: impact of function merging on program performance.
//!
//! Merged functions execute extra guards, selects and dispatch branches;
//! the paper measures 3.9–5% average slowdown on the SPEC subset whose
//! performance is affected at all. Here runtime is the dynamic instruction
//! count of each workload's `@__driver` under the interpreter — an
//! architecture-neutral proxy that captures exactly the inserted-overhead
//! effect.

use f3m_bench::{print_table, standard_strategies, BenchOpts};
use f3m_core::pass::run_pass;
use f3m_interp::{Interpreter, Limits, Val};
use f3m_workloads::suite::{table1, SizeClass};

fn dynamic_steps(m: &f3m_ir::module::Module) -> (u64, u64) {
    let mut total = 0u64;
    let mut checksum = 0u64;
    for arg in [3i64, 77, 12345] {
        let mut i = Interpreter::with_limits(
            m,
            Limits { fuel: 200_000_000, memory: 1 << 24, max_depth: 512 },
        );
        let out = i.call_by_name("__driver", &[Val::Int(arg)]).expect("driver runs");
        total += out.steps;
        checksum ^= out.checksum.rotate_left((arg % 64) as u32);
    }
    (total, checksum)
}

fn main() {
    let opts = BenchOpts::from_args();
    let specs: Vec<_> = table1()
        .into_iter()
        .filter(|s| s.class == SizeClass::Small || s.name == "400.perlbench")
        .collect();

    let mut rows = Vec::new();
    let mut avg = vec![0.0f64; standard_strategies().len()];
    for spec in &specs {
        let m = opts.build(spec);
        let (base_steps, base_sum) = dynamic_steps(&m);
        let mut row = vec![spec.name.to_string(), base_steps.to_string()];
        for (i, (label, config)) in standard_strategies().iter().enumerate() {
            let mut mm = m.clone();
            let report = run_pass(&mut mm, config);
            let (steps, sum) = dynamic_steps(&mm);
            assert_eq!(sum, base_sum, "{label} changed observable behaviour!");
            let slowdown = 100.0 * (steps as f64 / base_steps as f64 - 1.0);
            avg[i] += slowdown;
            row.push(format!("{slowdown:+.2}% ({})", report.stats.merges_committed));
        }
        rows.push(row);
    }
    rows.push(vec![
        "AVERAGE".into(),
        "".into(),
        format!("{:+.2}%", avg[0] / specs.len() as f64),
        format!("{:+.2}%", avg[1] / specs.len() as f64),
        format!("{:+.2}%", avg[2] / specs.len() as f64),
    ]);
    print_table(
        "Figure 17: dynamic-instruction overhead of merging (merges in parens)",
        &["benchmark", "baseline steps", "hyfm", "f3m", "f3m-adaptive"],
        &rows,
    );
    println!(
        "\nEvery row also differentially validates the merged module (identical\n\
         ext_sink checksums). Paper: average slowdown 3.9–5% on affected\n\
         benchmarks; the amount is \"rather random\" since neither technique\n\
         is profile-aware."
    );
}
