//! # f3m-bench — harness shared by the per-figure bench binaries
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index). This library holds what they
//! share: scaling policy, the simulated "rest of the compilation
//! pipeline", and plain-text table/series printing.

use std::time::{Duration, Instant};

use f3m_core::pass::{run_pass, MergeReport, PassConfig};
use f3m_ir::module::Module;
use f3m_workloads::suite::{SizeClass, WorkloadSpec};

/// Command-line options shared by every bench binary.
#[derive(Clone, Copy, Debug)]
pub struct BenchOpts {
    /// Global scale multiplier applied on top of the per-class defaults.
    pub scale: f64,
    /// Run everything at full paper scale (expensive: the `chrome-scale`
    /// HyFM ranking alone runs for many minutes, by design).
    pub full: bool,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts { scale: 1.0, full: false }
    }
}

impl BenchOpts {
    /// Parses `--scale <f>` and `--full` from `std::env::args`.
    pub fn from_args() -> BenchOpts {
        let mut opts = BenchOpts::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    opts.scale = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--scale needs a number");
                }
                "--full" => opts.full = true,
                other => eprintln!("ignoring unknown argument `{other}`"),
            }
            i += 1;
        }
        opts
    }

    /// Effective scale factor for a workload: large workloads are shrunk
    /// by default so the default run finishes in minutes, exactly like the
    /// reduced configurations papers use for artifact evaluation. `--full`
    /// restores Table I sizes.
    pub fn factor_for(&self, spec: &WorkloadSpec) -> f64 {
        let class_default = if self.full {
            1.0
        } else {
            match spec.class {
                SizeClass::Small => 1.0,
                SizeClass::Medium => 0.5,
                SizeClass::Large => match spec.name {
                    "chrome-scale" => 0.05,
                    _ => 0.1,
                },
            }
        };
        class_default * self.scale
    }

    /// Builds the (possibly scaled) module for a spec.
    pub fn build(&self, spec: &WorkloadSpec) -> Module {
        f3m_workloads::suite::build_module(&spec.scaled(self.factor_for(spec)))
    }
}

/// The simulated downstream pipeline. All of it is honest, measured work
/// whose cost is proportional to the code later compiler stages would
/// process — so "merging shrinks the module, later stages get faster"
/// emerges from real computation rather than a fabricated constant:
///
/// - several rounds of per-function analysis (CFG, dominator tree,
///   instruction re-encoding), standing in for the optimization passes a
///   real `-Os` pipeline reruns after merging,
/// - serialize + reparse (bitcode write/read),
/// - a final whole-module size accounting.
pub fn backend_cost(m: &Module) -> Duration {
    let t = Instant::now();
    for _ in 0..4 {
        for (_, f) in m.functions() {
            if f.is_declaration {
                continue;
            }
            let cfg = f3m_ir::cfg::Cfg::compute(f);
            let dt = f3m_ir::dom::DomTree::compute(f, &cfg);
            std::hint::black_box(&dt);
            std::hint::black_box(f3m_fingerprint::encode::encode_function(&m.types, f));
        }
    }
    let text = f3m_ir::printer::print_module(m);
    let reparsed = f3m_ir::parser::parse_module(&text).expect("module reparses");
    std::hint::black_box(f3m_ir::size::module_size(&reparsed));
    t.elapsed()
}

/// One strategy's end-to-end result on one workload.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Strategy label.
    pub label: &'static str,
    /// The merge report.
    pub report: MergeReport,
    /// Wall-clock of the merging pass.
    pub pass_time: Duration,
    /// Wall-clock of the simulated downstream compilation.
    pub backend_time: Duration,
}

impl RunResult {
    /// Total simulated compile time (pass + downstream).
    pub fn total_time(&self) -> Duration {
        self.pass_time + self.backend_time
    }
}

/// Runs one strategy on a fresh copy of the module.
pub fn run_strategy(m: &Module, label: &'static str, config: &PassConfig) -> RunResult {
    let mut m = m.clone();
    let t = Instant::now();
    let report = run_pass(&mut m, config);
    let pass_time = t.elapsed();
    let backend_time = backend_cost(&m);
    RunResult { label, report, pass_time, backend_time }
}

/// The three standard strategies of the evaluation.
pub fn standard_strategies() -> Vec<(&'static str, PassConfig)> {
    vec![
        ("hyfm", PassConfig::hyfm()),
        ("f3m", PassConfig::f3m()),
        ("f3m-adaptive", PassConfig::f3m_adaptive()),
    ]
}

/// Formats a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{:.0}s", s)
    } else if s >= 1.0 {
        format!("{:.2}s", s)
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// Prints a row-oriented table with a header.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Renders a 2D histogram as a compact ASCII heatmap (log-scaled glyphs),
/// with `(0,0)` at the bottom-left like the paper's figures.
pub fn print_heatmap(title: &str, grid: &[Vec<u64>], x_label: &str, y_label: &str) {
    println!("\n== {title} ==");
    println!("(y: {y_label}, x: {x_label}; glyph = log10 of pair count)");
    let glyphs = [' ', '.', ':', '+', 'x', 'X', '#', '@'];
    for row in grid.iter().rev() {
        let line: String = row
            .iter()
            .map(|&c| {
                if c == 0 {
                    ' '
                } else {
                    let g = (c as f64).log10().floor() as usize + 1;
                    glyphs[g.min(glyphs.len() - 1)]
                }
            })
            .collect();
        println!("|{line}|");
    }
    println!("+{}+", "-".repeat(grid.first().map(|r| r.len()).unwrap_or(0)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3m_workloads::suite::table1;

    #[test]
    fn scaling_defaults_bound_large_workloads() {
        let opts = BenchOpts::default();
        let t = table1();
        let chrome = t.iter().find(|s| s.name == "chrome-scale").unwrap();
        let scaled = chrome.scaled(opts.factor_for(chrome));
        assert!(scaled.functions <= 6001);
        let small = &t[0];
        assert_eq!(opts.factor_for(small), 1.0);
    }

    #[test]
    fn full_flag_restores_table1_sizes() {
        let opts = BenchOpts { scale: 1.0, full: true };
        for s in &table1() {
            assert_eq!(opts.factor_for(s), 1.0);
        }
    }

    #[test]
    fn backend_cost_grows_with_module_size() {
        let small = BenchOpts::default().build(&table1()[0].scaled(0.1));
        let big = BenchOpts::default().build(&table1()[0]);
        let _ = backend_cost(&small);
        let a = backend_cost(&small);
        let b = backend_cost(&big);
        assert!(b > a, "{b:?} vs {a:?}");
    }

    #[test]
    fn run_strategy_reports_consistent_sizes() {
        let m = BenchOpts::default().build(&table1()[0]);
        let r = run_strategy(&m, "f3m", &f3m_core::pass::PassConfig::f3m());
        assert!(r.report.stats.size_after <= r.report.stats.size_before);
        assert!(r.total_time() >= r.pass_time);
    }

    #[test]
    fn fmt_dur_picks_units() {
        assert!(fmt_dur(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_dur(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_secs(5)).ends_with('s'));
    }
}
