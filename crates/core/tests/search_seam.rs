//! Tests of the `CandidateSearch` seam: both strategy implementations must
//! agree where their semantics overlap, and the parallel preprocess path
//! must be invisible in the results.

use f3m_core::pass::{run_pass, PassConfig, Strategy};
use f3m_core::rank::{build_search, QueryCounters, SearchScratch};
use f3m_fingerprint::adaptive::MergeParams;
use f3m_ir::parser::parse_module;
use f3m_ir::printer::print_module;
use f3m_workloads::suite::{build_module, table1};

/// Three two-clone families with pairwise distinct opcode mixes. Every
/// function's unique best candidate is its exact twin under *any* sane
/// similarity metric, and the module is small enough that LSH (threshold 0,
/// identical fingerprints collide on every band) degenerates to an
/// exhaustive search.
const FAMILIES: &str = r#"
module "seam" {
define @a0(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = mul i32 %1, 3
  %3 = xor i32 %2, 255
  %4 = sub i32 %3, %0
  %5 = add i32 %4, 10
  %6 = mul i32 %5, 7
  %7 = xor i32 %6, 17
  %8 = sub i32 %7, %1
  ret i32 %8
}
define @a1(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = mul i32 %1, 3
  %3 = xor i32 %2, 255
  %4 = sub i32 %3, %0
  %5 = add i32 %4, 10
  %6 = mul i32 %5, 7
  %7 = xor i32 %6, 17
  %8 = sub i32 %7, %1
  ret i32 %8
}
define @b0(i32 %0) -> i32 {
bb0:
  %1 = and i32 %0, 4095
  %2 = or i32 %1, 5
  %3 = shl i32 %2, 2
  %4 = lshr i32 %3, 1
  %5 = and i32 %4, 255
  %6 = or i32 %5, 64
  %7 = shl i32 %6, 1
  %8 = lshr i32 %7, 3
  ret i32 %8
}
define @b1(i32 %0) -> i32 {
bb0:
  %1 = and i32 %0, 4095
  %2 = or i32 %1, 5
  %3 = shl i32 %2, 2
  %4 = lshr i32 %3, 1
  %5 = and i32 %4, 255
  %6 = or i32 %5, 64
  %7 = shl i32 %6, 1
  %8 = lshr i32 %7, 3
  ret i32 %8
}
define @c0(i32 %0) -> i32 {
bb0:
  %1 = ashr i32 %0, 1
  %2 = sub i32 %1, 9
  %3 = ashr i32 %2, 2
  %4 = sub i32 %3, 4
  %5 = ashr i32 %4, 1
  %6 = sub i32 %5, 2
  %7 = ashr i32 %6, 1
  %8 = sub i32 %7, 1
  ret i32 %8
}
define @c1(i32 %0) -> i32 {
bb0:
  %1 = ashr i32 %0, 1
  %2 = sub i32 %1, 9
  %3 = ashr i32 %2, 2
  %4 = sub i32 %3, 4
  %5 = ashr i32 %4, 1
  %6 = sub i32 %5, 2
  %7 = ashr i32 %6, 1
  %8 = sub i32 %7, 1
  ret i32 %8
}
}
"#;

#[test]
fn both_strategies_pick_the_same_best_candidate_when_lsh_is_exhaustive() {
    let m = parse_module(FAMILIES).unwrap();
    let funcs = m.defined_functions();
    assert_eq!(funcs.len(), 6);
    let available = vec![true; funcs.len()];

    let exhaustive = build_search(&m, &funcs, &Strategy::Hyfm, 1);
    let lsh =
        build_search(&m, &funcs, &Strategy::F3m(MergeParams::static_default()), 1);
    assert_eq!(exhaustive.num_functions(), 6);
    assert_eq!(lsh.num_functions(), 6);

    let mut scratch = SearchScratch::new();
    for i in 0..funcs.len() {
        let mut ce = QueryCounters::default();
        let mut cl = QueryCounters::default();
        let from_exhaustive = exhaustive
            .best_candidates(i, &available, &mut ce, &mut scratch)
            .choose(None, |idx| funcs[idx]);
        let from_lsh = lsh
            .best_candidates(i, &available, &mut cl, &mut scratch)
            .choose(None, |idx| funcs[idx]);
        // The twin of function 2m is 2m+1 and vice versa.
        let twin = i ^ 1;
        assert_eq!(from_exhaustive.map(|(j, _)| j), Some(twin), "exhaustive, query {i}");
        assert_eq!(from_lsh.map(|(j, _)| j), Some(twin), "lsh, query {i}");
        // Exact clones score 1.0 under both metrics.
        assert_eq!(from_exhaustive.map(|(_, s)| s), Some(1.0));
        assert_eq!(from_lsh.map(|(_, s)| s), Some(1.0));
        // The exhaustive baseline scans everyone else; LSH examines at
        // least the twin (identical fingerprints share every band).
        assert_eq!(ce.examined, (funcs.len() - 1) as u64);
        assert_eq!(ce.comparisons, (funcs.len() - 1) as u64);
        assert!(cl.returned >= 1, "query {i} returned nothing from LSH");
        assert!(cl.comparisons >= 1);
    }
}

#[test]
fn invalidated_candidates_stop_appearing() {
    let m = parse_module(FAMILIES).unwrap();
    let funcs = m.defined_functions();
    let mut lsh =
        build_search(&m, &funcs, &Strategy::F3m(MergeParams::static_default()), 1);
    let mut available = vec![true; funcs.len()];
    // Simulate committing the (0, 1) pair.
    lsh.invalidate(0);
    lsh.invalidate(1);
    available[0] = false;
    available[1] = false;
    let mut c = QueryCounters::default();
    let mut scratch = SearchScratch::new();
    let best = lsh
        .best_candidates(2, &available, &mut c, &mut scratch)
        .choose(None, |idx| funcs[idx]);
    assert_eq!(best.map(|(j, _)| j), Some(3), "twin of 2 is still available");
    // The removed pair left the index itself, so it can never resurface —
    // even with the availability mask fully open, a query from inside the
    // pair no longer finds its (removed) twin.
    let all_on = vec![true; funcs.len()];
    let mut c2 = QueryCounters::default();
    let resurfaced = lsh
        .best_candidates(0, &all_on, &mut c2, &mut scratch)
        .choose(None, |idx| funcs[idx]);
    assert_ne!(resurfaced.map(|(j, _)| j), Some(1), "1 was removed from the index");
    assert_ne!(resurfaced.map(|(j, _)| j), Some(0));
}

/// Everything the determinism contract covers for one pass run: the
/// printed merged module, every non-timing `MergeStats` counter (including
/// the wave and cache counters), and the full attempt log. Float fields
/// are compared bit-exactly.
type AttemptKey = (usize, usize, u64, u64, bool, i64);

fn determinism_key(
    m: &f3m_ir::module::Module,
    report: &f3m_core::pass::MergeReport,
) -> (String, Vec<u64>, Vec<AttemptKey>) {
    let s = &report.stats;
    let counters = vec![
        s.functions as u64,
        s.pairs_attempted as u64,
        s.merges_committed as u64,
        s.waves,
        s.aligns_speculative,
        s.aligns_reused,
        s.aligns_wasted,
        s.wave_conflicts,
        s.block_parts_cache_hits,
        s.block_parts_cache_misses,
        s.fingerprint_comparisons,
        s.candidates_examined,
        s.candidates_returned,
        s.bucket_evictions,
        s.probe_collisions,
        s.lsh_allocs_saved,
        s.align_cells,
        s.commits_rejected_build,
        s.commits_rejected_verify,
        s.commits_rejected_size,
        s.lsh_buckets,
        s.lsh_max_bucket,
        s.soa_bytes_per_fn,
        s.size_before,
        s.size_after,
    ];
    let mut counters = counters;
    // The occupancy snapshot feeding the metrics histogram must be
    // jobs-invariant too.
    counters.extend(report.lsh_bucket_sizes.iter().map(|&x| x as u64));
    let attempts = report
        .attempts
        .iter()
        .map(|a| {
            (
                a.f1.index(),
                a.f2.index(),
                a.similarity.to_bits(),
                a.align_ratio.to_bits(),
                a.committed,
                a.size_delta,
            )
        })
        .collect();
    (print_module(m), counters, attempts)
}

/// Pass-level determinism suite: for every strategy and several workload
/// modules, the merged module and all report counters must be
/// byte-identical across `--jobs 1/2/8`. This is the enforcement of the
/// wave loop's core contract (speculative parallel rank/align, serial
/// deterministic commit).
#[test]
fn pass_is_byte_identical_across_jobs_for_all_strategies() {
    let workloads = ["429.mcf", "462.libquantum", "433.milc"];
    for name in workloads {
        let spec = table1()
            .into_iter()
            .find(|s| s.name == name)
            .expect("known workload")
            .scaled(0.5);
        let base = build_module(&spec);
        for make in [PassConfig::hyfm, PassConfig::f3m, PassConfig::f3m_adaptive] {
            let mut reference = None;
            for jobs in [1usize, 2, 8] {
                let mut m = base.clone();
                let report = run_pass(&mut m, &make().with_jobs(jobs));
                let key = determinism_key(&m, &report);
                match &reference {
                    None => reference = Some((key, report)),
                    Some((r, _)) => assert_eq!(
                        *r, key,
                        "jobs={jobs} diverged from jobs=1 on {name} (strategy {:?})",
                        make().strategy
                    ),
                }
            }
            // Sanity on the wave bookkeeping itself: every speculative
            // alignment is either reused or wasted, and cache traffic is
            // two lookups per speculation.
            let (_, report) = reference.unwrap();
            let s = &report.stats;
            assert!(s.waves >= 1, "{name}: at least one wave runs");
            assert_eq!(s.aligns_speculative, s.aligns_reused + s.aligns_wasted);
            assert_eq!(
                s.block_parts_cache_hits + s.block_parts_cache_misses,
                2 * s.aligns_speculative
            );
            assert_eq!(s.aligns_reused, s.pairs_attempted as u64);
        }
    }
}

#[test]
fn job_count_is_invisible_in_merged_modules_and_counters() {
    let mut spec = table1()
        .into_iter()
        .find(|s| s.name == "429.mcf")
        .expect("known workload")
        .scaled(0.5);
    spec.seed ^= 0x5EA7;
    let base = build_module(&spec);
    for make in [PassConfig::hyfm, PassConfig::f3m, PassConfig::f3m_adaptive] {
        let mut reference = None;
        for jobs in [1usize, 4] {
            let mut m = base.clone();
            let report = run_pass(&mut m, &make().with_jobs(jobs));
            let key = (
                print_module(&m),
                report.stats.merges_committed,
                report.stats.pairs_attempted,
                report.stats.fingerprint_comparisons,
                report.stats.candidates_examined,
                report.stats.candidates_returned,
            );
            match &reference {
                None => reference = Some(key),
                Some(r) => assert_eq!(
                    *r, key,
                    "jobs={jobs} diverged from jobs=1 (strategy {:?})",
                    make().strategy
                ),
            }
        }
    }
}
