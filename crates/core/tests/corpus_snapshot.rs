//! Corpus snapshot round-trip and rejection behavior.
//!
//! A daemon that restarts from a snapshot must be indistinguishable from
//! one that never stopped: identical query answers at the same epoch,
//! and a save of the restored corpus reproduces the file bit-for-bit
//! (save/load is a fixpoint). Snapshots that cannot be trusted — written
//! under different search parameters, or stamped with an epoch older
//! than their own entries — are rejected with typed errors so the caller
//! can fall back to re-ingesting the embedded sources.

use std::path::PathBuf;

use f3m_core::corpus::{Corpus, CorpusConfig};
use f3m_fingerprint::{BackendKind, MergeParams, SnapshotError};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("f3m_corpus_snap_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("corpus.f3msnap")
}

fn populated_corpus(cfg: CorpusConfig, modules: usize) -> Corpus {
    let corpus = Corpus::new(cfg);
    for i in 0..modules {
        let mut spec = f3m_workloads::mini_suite()[0].clone();
        spec.functions = 40;
        spec.seed = 900 + i as u64;
        let mut m = f3m_workloads::build_module(&spec);
        m.name = format!("snap_m{i}");
        corpus.ingest(m).expect("ingest");
    }
    corpus
}

fn query_dump(c: &Corpus, modules: usize) -> Vec<(u64, String)> {
    (0..modules)
        .map(|i| {
            let (epoch, rs) = c.query_module(&format!("snap_m{i}"), 4).expect("query");
            (epoch, format!("{rs:?}"))
        })
        .collect()
}

#[test]
fn snapshot_roundtrip_preserves_queries_and_is_a_fixpoint() {
    let cfg = || CorpusConfig { jobs: 1, ..CorpusConfig::default() };
    let corpus = populated_corpus(cfg(), 3);
    let path = tmp("roundtrip");
    corpus.save_snapshot(&path).expect("save");

    let restored = Corpus::load_snapshot(&path, cfg()).expect("load");
    assert_eq!(restored.epoch(), corpus.epoch(), "epoch resumes");
    assert_eq!(query_dump(&restored, 3), query_dump(&corpus, 3));

    // Sources survive verbatim, so the daemon's module_source endpoint
    // answers identically without ever parsing.
    for i in 0..3 {
        let name = format!("snap_m{i}");
        assert_eq!(
            restored.module_source(&name).unwrap(),
            corpus.module_source(&name).unwrap()
        );
    }

    // Save-of-load is bit-identical: the snapshot is a fixpoint, so
    // periodic re-saves of an idle daemon never churn the file.
    let path2 = tmp("roundtrip2");
    restored.save_snapshot(&path2).expect("re-save");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&path2).unwrap(),
        "save(load(s)) == s"
    );
    for p in [&path, &path2] {
        let _ = std::fs::remove_dir_all(p.parent().unwrap());
    }
}

/// A restored corpus is not read-only: ingest/evict/query keep working,
/// with epochs continuing from the snapshot's.
#[test]
fn restored_corpus_accepts_mutations() {
    let cfg = || CorpusConfig { jobs: 1, ..CorpusConfig::default() };
    let corpus = populated_corpus(cfg(), 2);
    let path = tmp("mutate");
    corpus.save_snapshot(&path).expect("save");
    let restored = Corpus::load_snapshot(&path, cfg()).expect("load");
    let _ = std::fs::remove_dir_all(path.parent().unwrap());

    let epoch0 = restored.epoch();
    let mut spec = f3m_workloads::mini_suite()[0].clone();
    spec.functions = 24;
    spec.seed = 777;
    let mut m = f3m_workloads::build_module(&spec);
    m.name = "snap_new".into();
    let s = restored.ingest(m).expect("ingest into restored corpus");
    assert_eq!(s.epoch, epoch0 + 1);
    restored.query_module("snap_new", 3).expect("query new module");
    restored.evict("snap_m0").expect("evict restored module");
    assert_eq!(restored.epoch(), epoch0 + 2);
}

#[test]
fn mismatched_parameters_are_rejected() {
    let cfg = CorpusConfig { jobs: 1, ..CorpusConfig::default() };
    let corpus = populated_corpus(cfg, 1);
    let path = tmp("mismatch");
    corpus.save_snapshot(&path).expect("save");

    let wrong_backend = CorpusConfig {
        jobs: 1,
        params: MergeParams::static_default().with_backend(BackendKind::SimHash),
        ..CorpusConfig::default()
    };
    match Corpus::load_snapshot(&path, wrong_backend) {
        Err(SnapshotError::Mismatch(msg)) => {
            assert!(msg.contains("minhash") && msg.contains("simhash"), "names both: {msg}")
        }
        Err(other) => panic!("expected Mismatch, got {other:?}"),
        Ok(_) => panic!("mismatched parameters must not load"),
    }

    let wrong_k = CorpusConfig {
        jobs: 1,
        params: MergeParams::custom(64, 2, 0.0, 100),
        ..CorpusConfig::default()
    };
    assert!(matches!(
        Corpus::load_snapshot(&path, wrong_k).err(),
        Some(SnapshotError::Mismatch(_))
    ));
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn stale_epoch_is_rejected_but_sources_remain_usable() {
    let cfg = || CorpusConfig { jobs: 1, ..CorpusConfig::default() };
    let corpus = populated_corpus(cfg(), 2);
    let path = tmp("stale");
    // Stamp the header one epoch behind the entries: the index cannot be
    // trusted to reflect the entry revisions.
    corpus.save_snapshot_stamped(&path, corpus.epoch() - 1).expect("save stamped");

    match Corpus::load_snapshot(&path, cfg()) {
        Err(SnapshotError::StaleEpoch { snapshot, newest_entry }) => {
            assert!(newest_entry > snapshot, "{newest_entry} > {snapshot}")
        }
        Err(other) => panic!("expected StaleEpoch, got {other:?}"),
        Ok(_) => panic!("stale snapshot must not load"),
    }

    // The fallback path: the embedded sources re-ingest into a corpus
    // that answers exactly like the original.
    let sources = Corpus::snapshot_sources(&path).expect("sources readable");
    assert_eq!(sources.len(), 2);
    let rebuilt = Corpus::new(cfg());
    for (_, src) in &sources {
        let m = f3m_ir::parser::parse_module(src).expect("source parses");
        rebuilt.ingest(m).expect("re-ingest");
    }
    let dump = |c: &Corpus| {
        let (_, rs) = c.query_module("snap_m0", 4).expect("query");
        format!("{rs:?}")
    };
    assert_eq!(dump(&rebuilt), dump(&corpus));
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn truncated_and_corrupted_files_are_rejected() {
    let cfg = || CorpusConfig { jobs: 1, ..CorpusConfig::default() };
    let corpus = populated_corpus(cfg(), 1);
    let path = tmp("corrupt");
    corpus.save_snapshot(&path).expect("save");
    let bytes = std::fs::read(&path).unwrap();

    // Truncation at any of a few depths.
    for cut in [4usize, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert!(
            matches!(
                Corpus::load_snapshot(&path, cfg()).err(),
                Some(
                    SnapshotError::Truncated
                        | SnapshotError::ChecksumMismatch
                        | SnapshotError::BadMagic
                )
            ),
            "cut at {cut} must be rejected"
        );
    }

    // A single flipped payload byte trips the checksum.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();
    assert!(matches!(
        Corpus::load_snapshot(&path, cfg()).err(),
        Some(SnapshotError::ChecksumMismatch)
    ));
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}
