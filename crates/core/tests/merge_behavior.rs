//! Differential tests of the merged-function code generator.
//!
//! Every test builds a module, snapshots the observable behaviour of each
//! function (return value, `ext_sink` checksum, or trap) over a grid of
//! inputs, runs the merging pass, and checks that behaviour is unchanged
//! while the module shrank (or stayed put). This is the strongest check we
//! have that guard insertion, operand selects, dispatch blocks, phi
//! reconstruction and dominance repair are semantics-preserving.

use f3m_core::codegen::{build_merged, build_thunk, MergeConfig, MergeError, RepairMode};
use f3m_core::block_pairing::plan_blocks;
use f3m_core::pass::{run_pass, PassConfig};
use f3m_interp::{Interpreter, Limits, Trap, Val};
use f3m_ir::module::Module;
use f3m_ir::parser::parse_module;
use f3m_ir::size::module_size;
use f3m_ir::verify::verify_module;

const TEST_INPUTS: [i64; 7] = [-17, -1, 0, 1, 7, 100, 9999];

/// Snapshot of one function's behaviour over the input grid.
type Behaviour = Vec<Result<(Option<Val>, u64), Trap>>;

fn behaviour_of(m: &Module, name: &str) -> Behaviour {
    let f = m.function(m.lookup_function(name).unwrap());
    TEST_INPUTS
        .iter()
        .map(|&x| {
            let mut interp = Interpreter::with_limits(
                m,
                Limits { fuel: 1_000_000, memory: 1 << 20, max_depth: 64 },
            );
            let args: Vec<Val> = f
                .params
                .iter()
                .map(|&p| {
                    let mut scratch = f3m_ir::types::TypeStore::new();
                    if scratch.f64() == p || scratch.f32() == p {
                        Val::Float(x as f64 * 0.5)
                    } else if scratch.ptr() == p {
                        Val::Ptr(0) // null; functions under test avoid derefs
                    } else {
                        Val::Int(x)
                    }
                })
                .collect();
            interp.call_by_name(name, &args).map(|o| (o.ret, o.checksum))
        })
        .collect()
}

/// Prepares a module for differential testing: every defined function is
/// made module-private (so profitable merges can drop the originals, as a
/// linker would) and gains an external `__drv_<name>` wrapper through which
/// behaviour is observed before and after merging.
fn with_drivers(src: &str) -> (Module, Vec<String>) {
    let mut m = parse_module(src).unwrap();
    let targets: Vec<(f3m_ir::ids::FuncId, String)> = m
        .functions()
        .filter(|(_, f)| !f.is_declaration)
        .map(|(id, f)| (id, f.name.clone()))
        .collect();
    let mut scratch = f3m_ir::types::TypeStore::new();
    let ptr_ty = scratch.ptr();
    let void_ty = scratch.void();
    let mut drivers = Vec::new();
    for (id, name) in targets {
        m.function_mut(id).linkage = f3m_ir::function::Linkage::Internal;
        let (params, ret_ty) = {
            let f = m.function(id);
            (f.params.clone(), f.ret_ty)
        };
        let mut d = f3m_ir::function::Function::new(format!("__drv_{name}"), params.clone(), ret_ty);
        let bb = d.add_block("entry");
        let callee = d.func_ref(id, ptr_ty);
        let mut ops = vec![callee];
        for i in 0..params.len() {
            ops.push(d.arg(i));
        }
        let (_, r) = d.append_inst(
            &m.types,
            bb,
            f3m_ir::inst::Instruction {
                op: f3m_ir::inst::Opcode::Call,
                ty: ret_ty,
                operands: ops,
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: bb,
                result: None,
            },
        );
        d.append_inst(
            &m.types,
            bb,
            f3m_ir::inst::Instruction {
                op: f3m_ir::inst::Opcode::Ret,
                ty: void_ty,
                operands: r.into_iter().collect(),
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: bb,
                result: None,
            },
        );
        let dname = d.name.clone();
        m.add_function(d);
        drivers.push(dname);
    }
    verify_module(&m).expect("driver-augmented module must verify");
    (m, drivers)
}

/// Runs the pass and asserts behaviour preservation (observed through the
/// external drivers) for all functions present before the merge.
fn assert_merge_preserves(src: &str, expect_merges: usize) -> Module {
    let (mut m, drivers) = with_drivers(src);
    let before: Vec<Behaviour> = drivers.iter().map(|n| behaviour_of(&m, n)).collect();
    let size_before = module_size(&m);

    let report = run_pass(&mut m, &PassConfig::f3m());
    assert_eq!(
        report.stats.merges_committed, expect_merges,
        "unexpected merge count; attempts: {:#?}",
        report.attempts
    );
    verify_module(&m).expect("merged module must verify");

    for (name, old) in drivers.iter().zip(before.iter()) {
        let new = behaviour_of(&m, name);
        assert_eq!(&new, old, "behaviour of @{name} changed after merging");
    }
    if expect_merges > 0 {
        assert!(
            module_size(&m) < size_before,
            "committed merges must shrink the module: {} -> {}",
            size_before,
            module_size(&m)
        );
    }
    m
}

#[test]
fn merges_identical_straightline_functions() {
    assert_merge_preserves(
        r#"
module "t" {
define @a(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = mul i32 %1, 3
  %3 = xor i32 %2, 255
  %4 = sub i32 %3, %0
  %5 = shl i32 %4, 2
  %6 = add i32 %5, %1
  ret i32 %6
}
define @b(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = mul i32 %1, 3
  %3 = xor i32 %2, 255
  %4 = sub i32 %3, %0
  %5 = shl i32 %4, 2
  %6 = add i32 %5, %1
  ret i32 %6
}
}
"#,
        1,
    );
}

#[test]
fn merges_functions_with_different_constants_via_selects() {
    assert_merge_preserves(
        r#"
module "t" {
define @scale10(i32 %0) -> i32 {
bb0:
  %1 = mul i32 %0, 10
  %2 = add i32 %1, 7
  %3 = xor i32 %2, 96
  %4 = sub i32 %3, %0
  %5 = mul i32 %4, %1
  ret i32 %5
}
define @scale12(i32 %0) -> i32 {
bb0:
  %1 = mul i32 %0, 12
  %2 = add i32 %1, 9
  %3 = xor i32 %2, 96
  %4 = sub i32 %3, %0
  %5 = mul i32 %4, %1
  ret i32 %5
}
}
"#,
        1,
    );
}

#[test]
fn merges_diamond_cfgs_with_phis() {
    assert_merge_preserves(
        r#"
module "t" {
define @abs1(i32 %0) -> i32 {
bb0:
  %1 = icmp slt i32 %0, 0
  condbr %1, bb1, bb2
bb1:
  %2 = sub i32 0, %0
  br bb3
bb2:
  %3 = add i32 %0, 0
  br bb3
bb3:
  %4 = phi i32 [ %2, bb1 ], [ %3, bb2 ]
  %5 = mul i32 %4, 3
  ret i32 %5
}
define @abs2(i32 %0) -> i32 {
bb0:
  %1 = icmp slt i32 %0, 0
  condbr %1, bb1, bb2
bb1:
  %2 = sub i32 0, %0
  br bb3
bb2:
  %3 = add i32 %0, 0
  br bb3
bb3:
  %4 = phi i32 [ %2, bb1 ], [ %3, bb2 ]
  %5 = mul i32 %4, 5
  ret i32 %5
}
}
"#,
        1,
    );
}

#[test]
fn merges_loops() {
    assert_merge_preserves(
        r#"
module "t" {
define @sum3(i32 %0) -> i32 {
bb0:
  br bb1
bb1:
  %1 = phi i32 [ 0, bb0 ], [ %4, bb2 ]
  %2 = phi i32 [ 0, bb0 ], [ %5, bb2 ]
  %3 = icmp slt i32 %2, %0
  condbr %3, bb2, bb3
bb2:
  %4 = add i32 %1, 3
  %5 = add i32 %2, 1
  br bb1
bb3:
  ret i32 %1
}
define @sum4(i32 %0) -> i32 {
bb0:
  br bb1
bb1:
  %1 = phi i32 [ 0, bb0 ], [ %4, bb2 ]
  %2 = phi i32 [ 0, bb0 ], [ %5, bb2 ]
  %3 = icmp slt i32 %2, %0
  condbr %3, bb2, bb3
bb2:
  %4 = add i32 %1, 4
  %5 = add i32 %2, 1
  br bb1
bb3:
  ret i32 %1
}
}
"#,
        1,
    );
}

#[test]
fn merges_with_mismatched_instruction_runs() {
    // Middle instructions differ in opcode: guard diamonds are required.
    assert_merge_preserves(
        r#"
module "t" {
define @f1(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = mul i32 %1, 3
  %3 = shl i32 %2, 1
  %4 = sub i32 %3, %0
  %5 = xor i32 %4, 11
  ret i32 %5
}
define @f2(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = udiv i32 %1, 3
  %3 = ashr i32 %2, 1
  %4 = sub i32 %3, %0
  %5 = xor i32 %4, 11
  ret i32 %5
}
}
"#,
        1,
    );
}

#[test]
fn merges_with_divergent_branch_targets() {
    // Same terminators but structurally different successors exercise the
    // dispatch-block machinery and cross-side dominance repair.
    assert_merge_preserves(
        r#"
module "t" {
define @g1(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  br bb1
bb1:
  %2 = mul i32 %1, %1
  %3 = add i32 %2, 5
  br bb2
bb2:
  %4 = add i32 %3, 7
  %5 = mul i32 %4, 3
  ret i32 %5
}
define @g2(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  br bb2
bb2:
  %4 = add i32 %1, 7
  %5 = mul i32 %4, 3
  ret i32 %5
}
}
"#,
        1,
    );
}

#[test]
fn merges_functions_calling_externals() {
    assert_merge_preserves(
        r#"
module "t" {
declare @ext_src_i64(i64) -> i64
declare @ext_sink_i64(i64) -> void
define @p1(i64 %0) -> i64 {
bb0:
  %1 = call i64 @ext_src_i64(i64 %0)
  %2 = add i64 %1, 17
  call void @ext_sink_i64(i64 %2)
  %3 = mul i64 %2, 3
  ret i64 %3
}
define @p2(i64 %0) -> i64 {
bb0:
  %1 = call i64 @ext_src_i64(i64 %0)
  %2 = add i64 %1, 23
  call void @ext_sink_i64(i64 %2)
  %3 = mul i64 %2, 3
  ret i64 %3
}
}
"#,
        1,
    );
}

#[test]
fn merges_functions_with_different_callees_via_select() {
    assert_merge_preserves(
        r#"
module "t" {
define @leaf_a(i64 %0) -> i64 {
bb0:
  %1 = add i64 %0, 100
  %2 = mul i64 %1, 3
  %3 = xor i64 %2, 5
  %4 = sub i64 %3, %0
  ret i64 %4
}
define @leaf_b(i64 %0) -> i64 {
bb0:
  %1 = add i64 %0, 200
  %2 = mul i64 %1, 3
  %3 = xor i64 %2, 5
  %4 = sub i64 %3, %0
  ret i64 %4
}
define @call_a(i64 %0) -> i64 {
bb0:
  %1 = mul i64 %0, 7
  %2 = call i64 @leaf_a(i64 %1)
  %3 = add i64 %2, 1
  ret i64 %3
}
define @call_b(i64 %0) -> i64 {
bb0:
  %1 = mul i64 %0, 7
  %2 = call i64 @leaf_b(i64 %1)
  %3 = add i64 %2, 1
  ret i64 %3
}
}
"#,
        2,
    );
}

#[test]
fn merges_memory_heavy_functions() {
    assert_merge_preserves(
        r#"
module "t" {
define @mem1(i64 %0) -> i32 {
bb0:
  %1 = alloca [8 x i32]
  %2 = trunc i64 %0 to i32
  %3 = gep i32, %1, i64 3
  store i32 %2, %3
  %4 = load i32, %3
  %5 = add i32 %4, 9
  ret i32 %5
}
define @mem2(i64 %0) -> i32 {
bb0:
  %1 = alloca [8 x i32]
  %2 = trunc i64 %0 to i32
  %3 = gep i32, %1, i64 5
  store i32 %2, %3
  %4 = load i32, %3
  %5 = add i32 %4, 11
  ret i32 %5
}
}
"#,
        1,
    );
}

#[test]
fn rejects_mismatched_return_types() {
    let m = parse_module(
        r#"
module "t" {
define @r32(i32 %0) -> i32 {
bb0:
  ret i32 %0
}
define @r64(i64 %0) -> i64 {
bb0:
  ret i64 %0
}
}
"#,
    )
    .unwrap();
    let ids = m.defined_functions();
    let plan = plan_blocks(&m, ids[0], ids[1]);
    let err = build_merged(&m, ids[0], ids[1], &plan, MergeConfig::default(), "x".into())
        .unwrap_err();
    assert_eq!(err, MergeError::IncompatibleReturnTypes);
}

#[test]
fn tiny_external_functions_are_not_merged() {
    // External one-instruction functions must keep their symbols, so the
    // fid dispatch + two thunks cost more than the shared `ret`.
    let mut m = parse_module(
        r#"
module "t" {
define @t1(i32 %0) -> i32 {
bb0:
  ret i32 %0
}
define @t2(i32 %0) -> i32 {
bb0:
  ret i32 %0
}
}
"#,
    )
    .unwrap();
    let report = run_pass(&mut m, &PassConfig::f3m());
    assert_eq!(report.stats.merges_committed, 0);
    assert_eq!(report.stats.size_before, report.stats.size_after);
}

#[test]
fn tiny_internal_functions_merge_and_originals_drop() {
    // The same pair with internal linkage: all call sites are redirected
    // and the originals disappear, so even a trivial merge is profitable.
    let m = assert_merge_preserves(
        r#"
module "t" {
define @t1(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 2
  ret i32 %1
}
define @t2(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 2
  ret i32 %1
}
}
"#,
        1,
    );
    let t1 = m.lookup_function("t1").unwrap();
    assert!(m.function(t1).is_declaration, "internal original dropped");
}

#[test]
fn merged_params_carry_both_sides_unshared_types() {
    let (mut m, drivers) = with_drivers(
        r#"
module "t" {
define @u1(i32 %0, i64 %1) -> i32 {
bb0:
  %2 = trunc i64 %1 to i32
  %3 = add i32 %0, %2
  %4 = mul i32 %3, 3
  %5 = xor i32 %4, 21
  ret i32 %5
}
define @u2(i32 %0, f64 %1) -> i32 {
bb0:
  %2 = fptosi f64 %1 to i32
  %3 = add i32 %0, %2
  %4 = mul i32 %3, 3
  %5 = xor i32 %4, 21
  ret i32 %5
}
}
"#,
    );
    let before: Vec<Behaviour> = drivers.iter().map(|n| behaviour_of(&m, n)).collect();
    let report = run_pass(&mut m, &PassConfig::f3m());
    assert_eq!(report.stats.merges_committed, 1, "{:#?}", report.attempts);
    verify_module(&m).unwrap();
    for (n, old) in drivers.iter().zip(before.iter()) {
        assert_eq!(&behaviour_of(&m, n), old, "@{n}");
    }
    // The merged function must carry both the i64 and the f64 param.
    let merged = m
        .functions()
        .find(|(_, f)| f.name.starts_with("__merged"))
        .expect("merged function added");
    assert_eq!(merged.1.params.len(), 4, "fid + shared i32 + i64 + f64");
}

#[test]
fn legacy_repair_mode_reproduces_hyfm_miscompile() {
    // Section III-E bug #1: a value defined in a guarded (side-only) block,
    // used both inside its block and in a later shared block. The legacy
    // repair stores it at the end of its block while rewriting the
    // same-block use to a load, which then reads a stale slot.
    // @v1's bb1 computes %2 and uses it *in the same block* (%3 = %2 + %1);
    // both %2 and %3 are also used by the shared tail block, so both get
    // demoted when merged with @v2 (whose CFG skips bb1). Legacy placement
    // stores %2 at the end of bb1, after %3's use was rewritten to a load —
    // so %3 reads the uninitialized slot.
    let src = r#"
module "t" {
define @v1(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  br bb1
bb1:
  %2 = mul i32 %1, %1
  %3 = add i32 %2, %1
  br bb2
bb2:
  %4 = add i32 %2, %3
  %5 = mul i32 %4, 3
  %6 = xor i32 %5, 9
  ret i32 %6
}
define @v2(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  br bb2
bb2:
  %4 = add i32 %1, %1
  %5 = mul i32 %4, 3
  %6 = xor i32 %5, 9
  ret i32 %6
}
}
"#;
    // Build the merged function under each repair mode and call it
    // directly with fid = false (acting as @v1), comparing against the
    // original's behaviour — profitability does not gate this check.
    let merged_behaviour = |mode: RepairMode| -> (Behaviour, bool) {
        let mut m = parse_module(src).unwrap();
        let ids = m.defined_functions();
        let plan = plan_blocks(&m, ids[0], ids[1]);
        let mf =
            build_merged(&m, ids[0], ids[1], &plan, MergeConfig { repair: mode }, "mm".into())
                .unwrap();
        assert!(mf.demotions > 0, "this shape must trigger dominance repair");
        let param_slot = mf.param_map1[0];
        let merged = m.add_function(mf.func);
        let verify_ok = f3m_ir::verify::verify_function(&m, merged).is_ok();
        let behaviour = TEST_INPUTS
            .iter()
            .map(|&x| {
                let mut interp = Interpreter::with_limits(
                    &m,
                    Limits { fuel: 1_000_000, memory: 1 << 20, max_depth: 64 },
                );
                let mut args = vec![Val::Int(0); param_slot + 1];
                args[0] = Val::Int(0); // fid = false -> act as @v1
                args[param_slot] = Val::Int(x);
                interp.call(merged, &args).map(|o| (o.ret, o.checksum))
            })
            .collect();
        (behaviour, verify_ok)
    };

    let m0 = parse_module(src).unwrap();
    let original = behaviour_of(&m0, "v1");

    let (phi_b, phi_ok) = merged_behaviour(RepairMode::Phi);
    assert!(phi_ok);
    assert_eq!(phi_b, original, "phi reconstruction must preserve @v1");

    let (stack_b, stack_ok) = merged_behaviour(RepairMode::Stack);
    assert!(stack_ok);
    assert_eq!(stack_b, original, "fixed stack demotion must preserve @v1");

    // Legacy mode: still valid SSA — the bug is a silent miscompile, not a
    // verifier failure (which is why it went unnoticed in HyFM).
    let (legacy_b, legacy_ok) = merged_behaviour(RepairMode::LegacyBuggy);
    assert!(legacy_ok);
    assert_ne!(legacy_b, original, "legacy store placement must miscompile @v1");
}

#[test]
fn thunk_construction_is_well_typed() {
    let mut m = parse_module(
        r#"
module "t" {
define @orig(i32 %0, i64 %1) -> i32 {
bb0:
  %2 = trunc i64 %1 to i32
  %3 = add i32 %0, %2
  ret i32 %3
}
}
"#,
    )
    .unwrap();
    let orig = m.lookup_function("orig").unwrap();
    // Build a fake "merged" target with the fid + same params.
    let merged_src = {
        let mut scratch = f3m_ir::types::TypeStore::new();
        let b = scratch.bool();
        let i32t = scratch.int(32);
        let i64t = scratch.int(64);
        let mut f = f3m_ir::function::Function::new("m", vec![b, i32t, i64t], i32t);
        let bb = f.add_block("entry");
        let arg = f.arg(1);
        f.append_inst(
            &m.types,
            bb,
            f3m_ir::inst::Instruction {
                op: f3m_ir::inst::Opcode::Ret,
                ty: scratch.void(),
                operands: vec![arg],
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: bb,
                result: None,
            },
        );
        f
    };
    let merged = m.add_function(merged_src);
    let thunk = build_thunk(&m, orig, merged, false, &[1, 2]);
    assert_eq!(thunk.name, "orig");
    assert_eq!(thunk.params.len(), 2);
    // Swap in and verify.
    m.replace_function(orig, thunk);
    verify_module(&m).unwrap();
}

#[test]
fn merged_module_of_many_variants_passes_differential_grid() {
    // Six variants of the same function with distinct constants; the pass
    // should find several profitable merges and preserve all behaviours.
    let mut src = String::from("module \"t\" {\n");
    for (i, c) in [3i64, 5, 7, 11, 13, 17].iter().enumerate() {
        src.push_str(&format!(
            r#"define @w{i}(i32 %0) -> i32 {{
bb0:
  %1 = mul i32 %0, {c}
  %2 = add i32 %1, {c}
  %3 = xor i32 %2, 77
  %4 = sub i32 %3, %0
  %5 = shl i32 %4, 1
  %6 = add i32 %5, %1
  ret i32 %6
}}
"#
        ));
    }
    src.push_str("}\n");
    let (mut m, drivers) = with_drivers(&src);
    let before: Vec<Behaviour> = drivers.iter().map(|n| behaviour_of(&m, n)).collect();
    let report = run_pass(&mut m, &PassConfig::f3m());
    assert!(report.stats.merges_committed >= 2, "{:#?}", report.stats);
    verify_module(&m).unwrap();
    for (n, old) in drivers.iter().zip(before.iter()) {
        assert_eq!(&behaviour_of(&m, n), old, "@{n}");
    }
    assert!(report.stats.size_reduction() > 0.0);
}
