//! Equivalence of the mmap-resident restore path with the bulk restore
//! path, and monotonicity of multi-probe widening.
//!
//! A corpus restored through [`Corpus::load_snapshot_resident`] under any
//! budget is a pure paging change: query answers, epochs and subsequent
//! mutations must be byte-identical to a bulk [`Corpus::load_snapshot`]
//! of the same file, at every shard count and jobs level, whichever
//! pager backend serves the rows. Multi-probe widening may only ever
//! *add* candidates: the probe sequence is prefix-stable, so the
//! candidate set at probe budget `p1` is a subset of the set at
//! `p2 > p1`, and probing composes with residency without changing
//! answers.

use std::path::PathBuf;

use f3m_core::corpus::{Corpus, CorpusConfig};
use f3m_fingerprint::encode::encode_function;
use f3m_fingerprint::lsh::{band_keys_for, probe_keys_for};
use f3m_fingerprint::pager::PagerKind;
use f3m_fingerprint::resident::TARGET_SHARD_BYTES;
use f3m_fingerprint::{backend_for, MergeParams, ShardedLshIndex};

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("f3m_resident_parity_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("corpus.f3msnap")
}

fn populated_corpus(cfg: CorpusConfig, modules: usize) -> Corpus {
    let corpus = Corpus::new(cfg);
    for i in 0..modules {
        let mut spec = f3m_workloads::mini_suite()[0].clone();
        spec.functions = 48;
        spec.seed = 1200 + i as u64;
        let mut m = f3m_workloads::build_module(&spec);
        m.name = format!("par_m{i}");
        corpus.ingest(m).expect("ingest");
    }
    corpus
}

fn query_dump(c: &Corpus, modules: usize) -> Vec<(u64, String)> {
    (0..modules)
        .map(|i| {
            let (epoch, rs) = c.query_module(&format!("par_m{i}"), 4).expect("query");
            (epoch, format!("{rs:?}"))
        })
        .collect()
}

/// A one-shard budget forces the sweep through fault/spill traffic; the
/// answers must not notice.
const TINY_BUDGET: u64 = TARGET_SHARD_BYTES as u64;

/// Budgeted resident restore answers byte-identically to bulk restore at
/// every shard count and jobs level.
#[test]
fn resident_restore_matches_bulk_across_shards_and_jobs() {
    for shards in 1..=5usize {
        for jobs in [1usize, 2, 8] {
            let cfg =
                || CorpusConfig { shards, jobs, ..CorpusConfig::default() };
            let corpus = populated_corpus(cfg(), 3);
            let path = tmp(&format!("grid_s{shards}_j{jobs}"));
            corpus.save_snapshot(&path).expect("save");

            let bulk = Corpus::load_snapshot(&path, cfg()).expect("bulk load");
            let resident =
                Corpus::load_snapshot_resident(&path, cfg(), PagerKind::Auto, TINY_BUDGET)
                    .expect("resident load");
            assert_eq!(resident.epoch(), bulk.epoch(), "s{shards} j{jobs}: epoch");
            assert_eq!(
                query_dump(&resident, 3),
                query_dump(&bulk, 3),
                "s{shards} j{jobs}: answers"
            );
            let (_, counters) = resident.residency().expect("resident counters");
            assert!(counters.resident_bytes <= TINY_BUDGET, "budget holds");
            assert!(bulk.residency().is_none(), "bulk restore has no residency");
            let _ = std::fs::remove_dir_all(path.parent().unwrap());
        }
    }
}

/// The residency counters record logical paging decisions, so the mmap
/// pager and the portable read-at fallback report the same numbers for
/// the same access pattern — and of course the same answers.
#[test]
fn pager_backends_agree_on_answers_and_counters() {
    let cfg = || CorpusConfig { jobs: 1, ..CorpusConfig::default() };
    let corpus = populated_corpus(cfg(), 3);
    let path = tmp("pagers");
    corpus.save_snapshot(&path).expect("save");

    let run = |kind: PagerKind| {
        let c = Corpus::load_snapshot_resident(&path, cfg(), kind, TINY_BUDGET);
        let c = match c {
            Ok(c) => c,
            Err(e) => panic!("resident load: {e:?}"),
        };
        let dump = query_dump(&c, 3);
        let (name, counters) = c.residency().expect("counters");
        (dump, name, counters)
    };
    let (dump_a, name_a, ca) = run(PagerKind::File);
    let (dump_b, name_b, cb) = run(PagerKind::Auto);
    assert_eq!(name_a, "file");
    assert_eq!(dump_a, dump_b, "pagers {name_a} vs {name_b}: answers");
    assert_eq!(ca.resident_bytes, cb.resident_bytes);
    assert_eq!(ca.shard_faults, cb.shard_faults);
    assert_eq!(ca.shard_spills, cb.shard_spills);
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

/// A resident corpus is not read-only: ingest, update and evict convert
/// rows to owned storage as needed and stay in lockstep with the same
/// mutations applied to a bulk-restored twin.
#[test]
fn resident_corpus_mutations_match_bulk_twin() {
    let cfg = || CorpusConfig { jobs: 1, ..CorpusConfig::default() };
    let corpus = populated_corpus(cfg(), 2);
    let path = tmp("mutations");
    corpus.save_snapshot(&path).expect("save");

    let bulk = Corpus::load_snapshot(&path, cfg()).expect("bulk load");
    let resident = Corpus::load_snapshot_resident(&path, cfg(), PagerKind::Auto, TINY_BUDGET)
        .expect("resident load");

    let mutate = |c: &Corpus| {
        // Ingest a fresh module, body-swap one function of a resident
        // module via update_function, then evict the other module.
        let mut spec = f3m_workloads::mini_suite()[0].clone();
        spec.functions = 24;
        spec.seed = 4242;
        let mut m = f3m_workloads::build_module(&spec);
        m.name = "par_new".into();
        c.ingest(m).expect("ingest into restored corpus");

        let src = c.module_source("par_m0").expect("source");
        let m = f3m_ir::parser::parse_module(&src).expect("parse");
        let name = m
            .defined_functions()
            .into_iter()
            .filter(|&f| m.function(f).num_linked_insts() > 0)
            .map(|f| m.function(f).name.clone())
            .next()
            .expect("module has a merge-eligible function");
        c.update_function("par_m0", &name, None).expect("touch resident function");
        c.evict("par_m1").expect("evict resident module");
    };
    mutate(&bulk);
    mutate(&resident);

    assert_eq!(resident.epoch(), bulk.epoch(), "epochs advance in lockstep");
    let dump = |c: &Corpus| {
        ["par_m0", "par_new"]
            .map(|n| format!("{:?}", c.query_module(n, 4).expect("query")))
    };
    assert_eq!(dump(&resident), dump(&bulk), "post-mutation answers");
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

/// Probe sequences are prefix-stable, so candidate sets grow
/// monotonically with the probe budget and always contain the unprobed
/// set.
#[test]
fn multi_probe_candidates_grow_monotonically()  {
    let mut spec = f3m_workloads::mini_suite()[1].clone();
    spec.functions = 72;
    spec.seed = 5150;
    let m = f3m_workloads::build_module(&spec);
    let params = MergeParams::static_default();
    let backend = backend_for(params.backend, params.k);
    let sigs: Vec<Vec<u64>> = m
        .defined_functions()
        .into_iter()
        .map(|f| backend.signature(&encode_function(&m.types, m.function(f))))
        .collect();

    let index: ShardedLshIndex<usize> = ShardedLshIndex::new(params.lsh, 3);
    for (i, sig) in sigs.iter().enumerate() {
        index.insert_with_keys(i, &band_keys_for(params.lsh, sig));
    }

    for (i, sig) in sigs.iter().enumerate() {
        let base_keys = band_keys_for(params.lsh, sig);
        let (base, _) = index.candidates_counted(&base_keys, i);
        let mut prev: Vec<usize> = base;
        for probes in [4usize, 16, 64] {
            let keys = probe_keys_for(params.lsh, sig, probes);
            assert_eq!(&keys[..base_keys.len()], &base_keys[..], "prefix-stable probes");
            let (cands, _) = index.candidates_counted(&keys, i);
            assert!(
                prev.iter().all(|c| cands.contains(c)),
                "fn {i}: probes={probes} dropped a candidate"
            );
            assert!(cands.len() >= prev.len(), "fn {i}: candidate count shrank");
            prev = cands;
        }
    }

    // Probing must genuinely *recall* a near-miss, not just re-collect
    // the base buckets. Plant a neighbor one low-bit flip away in every
    // band: it shares no exact band with the query (invisible to the
    // unprobed lookup), but probe 0 perturbs band 0 slot 0 bit 0 —
    // exactly the neighbor's band-0 bucket.
    let query = sigs[0].clone();
    let r = params.lsh.rows;
    let mut neighbor = query.clone();
    for j in 0..params.lsh.bands {
        neighbor[j * r] ^= 1;
    }
    let nid = sigs.len();
    index.insert_with_keys(nid, &band_keys_for(params.lsh, &neighbor));
    let (unprobed, _) = index.candidates_counted(&band_keys_for(params.lsh, &query), 0);
    assert!(!unprobed.contains(&nid), "neighbor shares no exact band");
    let (probed, _) = index.candidates_counted(&probe_keys_for(params.lsh, &query, 1), 0);
    assert!(probed.contains(&nid), "one probe recalls the adjacent bucket");
}

/// Probing composes with residency: a probed corpus restored bulk and
/// restored resident answer identically.
#[test]
fn probed_queries_match_across_restore_modes() {
    let cfg = || CorpusConfig {
        jobs: 1,
        params: MergeParams::static_default().with_probes(16),
        ..CorpusConfig::default()
    };
    let corpus = populated_corpus(cfg(), 3);
    let path = tmp("probed");
    corpus.save_snapshot(&path).expect("save");

    let bulk = Corpus::load_snapshot(&path, cfg()).expect("bulk load");
    let resident = Corpus::load_snapshot_resident(&path, cfg(), PagerKind::Auto, TINY_BUDGET)
        .expect("resident load");
    assert_eq!(query_dump(&resident, 3), query_dump(&bulk, 3), "probed answers");

    // The probe budget is a query-time knob: a snapshot written with
    // probes=16 loads fine under probes=0 and vice versa.
    let unprobed = CorpusConfig { jobs: 1, ..CorpusConfig::default() };
    Corpus::load_snapshot(&path, unprobed).expect("probes are not a snapshot parameter");
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}
