//! Edge-case tests of the merged-function code generator: invoke
//! terminators, parameter-list merging, guard accounting, and attempt
//! bookkeeping.

use f3m_core::block_pairing::plan_blocks;
use f3m_core::codegen::{build_merged, MergeConfig};
use f3m_core::pass::{run_pass, PassConfig};
use f3m_interp::{Interpreter, Limits, Val};
use f3m_ir::parser::parse_module;
use f3m_ir::verify::verify_function;

#[test]
fn merges_functions_with_invokes() {
    let m = parse_module(
        r#"
module "t" {
declare @ext_src_i32(i32) -> i32
define @i1f(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 3
  %2 = invoke i32 @ext_src_i32(i32 %1) to bb1 unwind bb2
bb1:
  %3 = mul i32 %2, 5
  ret i32 %3
bb2:
  ret i32 -1
}
define @i2f(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 4
  %2 = invoke i32 @ext_src_i32(i32 %1) to bb1 unwind bb2
bb1:
  %3 = mul i32 %2, 5
  ret i32 %3
bb2:
  ret i32 -1
}
}
"#,
    )
    .unwrap();
    let ids = m.defined_functions();
    let plan = plan_blocks(&m, ids[0], ids[1]);
    assert!(plan.pairs.len() >= 2, "{plan:?}");
    let mf = build_merged(&m, ids[0], ids[1], &plan, MergeConfig::default(), "mm".into())
        .unwrap();
    assert!(mf.selects_inserted >= 1, "the +3/+4 constant needs a select");
    let mut m = m;
    let param_slot = mf.param_map1[0];
    let merged = m.add_function(mf.func);
    verify_function(&m, merged).unwrap();
    // Differential on both sides.
    for (fid, orig_idx) in [(0i64, 0usize), (1, 1)] {
        for x in [-3i64, 0, 9] {
            let mut i = Interpreter::new(&m);
            let orig = i.call(ids[orig_idx], &[Val::Int(x)]).unwrap();
            let mut args = vec![Val::Int(0); 2];
            args[0] = Val::Int(fid);
            args[param_slot] = Val::Int(x);
            let mut i2 = Interpreter::new(&m);
            let merged_out = i2.call(merged, &args).unwrap();
            assert_eq!(orig.ret, merged_out.ret, "fid={fid} x={x}");
        }
    }
}

#[test]
fn param_merging_shares_compatible_slots() {
    let m = parse_module(
        r#"
module "t" {
define @p1(i32 %0, i32 %1, f64 %2) -> i32 {
bb0:
  %3 = add i32 %0, %1
  ret i32 %3
}
define @p2(i32 %0, f64 %1) -> i32 {
bb0:
  %2 = add i32 %0, %0
  ret i32 %2
}
}
"#,
    )
    .unwrap();
    let ids = m.defined_functions();
    let plan = plan_blocks(&m, ids[0], ids[1]);
    let mf =
        build_merged(&m, ids[0], ids[1], &plan, MergeConfig::default(), "mm".into()).unwrap();
    // fid + (i32, i32, f64) with p2's (i32, f64) sharing slots.
    assert_eq!(mf.func.params.len(), 4, "all of p2's params fit in p1's slots");
    assert_eq!(mf.param_map1, vec![1, 2, 3]);
    assert_eq!(mf.param_map2[0], 1, "first i32 shared");
    assert_eq!(mf.param_map2[1], 3, "f64 shared");
}

#[test]
fn param_merging_appends_unshared_types() {
    let m = parse_module(
        r#"
module "t" {
define @q1(i32 %0) -> i32 {
bb0:
  ret i32 %0
}
define @q2(i64 %0) -> i32 {
bb0:
  %1 = trunc i64 %0 to i32
  ret i32 %1
}
}
"#,
    )
    .unwrap();
    let ids = m.defined_functions();
    let plan = plan_blocks(&m, ids[0], ids[1]);
    let mf =
        build_merged(&m, ids[0], ids[1], &plan, MergeConfig::default(), "mm".into()).unwrap();
    assert_eq!(mf.func.params.len(), 3, "fid + i32 + i64 (nothing shared)");
}

#[test]
fn attempt_records_track_similarity_ordering() {
    // A module with one very similar pair and one dissimilar singleton:
    // the pair's attempt must carry higher similarity than any attempt
    // involving the singleton.
    let mut m = parse_module(
        r#"
module "t" {
define @s1(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = mul i32 %1, 3
  %3 = xor i32 %2, 9
  %4 = sub i32 %3, %0
  %5 = shl i32 %4, 1
  %6 = or i32 %5, 1
  %7 = and i32 %6, 255
  %8 = add i32 %7, %1
  %9 = xor i32 %8, %0
  %10 = or i32 %9, 3
  ret i32 %10
}
define @s2(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = mul i32 %1, 3
  %3 = xor i32 %2, 9
  %4 = sub i32 %3, %0
  %5 = shl i32 %4, 1
  %6 = or i32 %5, 1
  %7 = and i32 %6, 255
  %8 = add i32 %7, %1
  %9 = xor i32 %8, %0
  %10 = or i32 %9, 3
  ret i32 %10
}
define @other(f64 %0) -> f64 {
bb0:
  %1 = fmul f64 %0, %0
  %2 = fadd f64 %1, %0
  %3 = fsub f64 %2, 0f3FF0000000000000
  ret f64 %3
}
}
"#,
    )
    .unwrap();
    let report = run_pass(&mut m, &PassConfig::f3m());
    let committed: Vec<_> = report.attempts.iter().filter(|a| a.committed).collect();
    assert_eq!(committed.len(), 1);
    assert!(committed[0].similarity > 0.99, "{:?}", committed[0]);
    assert_eq!(committed[0].align_ratio, 1.0);
}

#[test]
fn unreachable_original_blocks_are_tolerated() {
    // Unreachable code in an input function must not derail merging.
    let m = parse_module(
        r#"
module "t" {
define @u1(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 5
  ret i32 %1
bb1:
  unreachable
}
define @u2(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 5
  ret i32 %1
bb1:
  unreachable
}
}
"#,
    )
    .unwrap();
    let ids = m.defined_functions();
    let plan = plan_blocks(&m, ids[0], ids[1]);
    let mf =
        build_merged(&m, ids[0], ids[1], &plan, MergeConfig::default(), "mm".into()).unwrap();
    let mut m = m;
    let merged = m.add_function(mf.func);
    verify_function(&m, merged).unwrap();
}

#[test]
fn merged_function_reports_guard_statistics() {
    let m = parse_module(
        r#"
module "t" {
define @g1(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 10
  %2 = mul i32 %1, 20
  ret i32 %2
}
define @g2(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 11
  %2 = mul i32 %1, 22
  ret i32 %2
}
}
"#,
    )
    .unwrap();
    let ids = m.defined_functions();
    let plan = plan_blocks(&m, ids[0], ids[1]);
    let mf =
        build_merged(&m, ids[0], ids[1], &plan, MergeConfig::default(), "mm".into()).unwrap();
    assert_eq!(mf.selects_inserted, 2, "two differing constants");
    assert_eq!(mf.demotions, 0, "straight-line merge needs no repair");
}

#[test]
fn interpreting_merged_functions_counts_guard_overhead() {
    // The merged body executes strictly more instructions than either
    // original (selects + dispatch) — the Fig. 17 effect in miniature.
    let m = parse_module(
        r#"
module "t" {
define @h1(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 10
  %2 = mul i32 %1, 20
  %3 = xor i32 %2, 7
  ret i32 %3
}
define @h2(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 11
  %2 = mul i32 %1, 20
  %3 = xor i32 %2, 9
  ret i32 %3
}
}
"#,
    )
    .unwrap();
    let ids = m.defined_functions();
    let plan = plan_blocks(&m, ids[0], ids[1]);
    let mf =
        build_merged(&m, ids[0], ids[1], &plan, MergeConfig::default(), "mm".into()).unwrap();
    let param_slot = mf.param_map1[0];
    let mut m = m;
    let merged = m.add_function(mf.func);
    let mut i = Interpreter::new(&m);
    let orig_steps = i.call(ids[0], &[Val::Int(5)]).unwrap().steps;
    let mut args = vec![Val::Int(0); 2];
    args[param_slot] = Val::Int(5);
    let merged_steps = i.call(merged, &args).unwrap().steps;
    assert!(
        merged_steps > orig_steps,
        "guards cost dynamic instructions: {merged_steps} vs {orig_steps}"
    );
    let limits = Limits::default();
    let _ = limits;
}
