//! Equivalence property for the incremental recompute engine: after
//! every prefix of a randomized ingest/evict/update/query interleaving,
//! the revision-stamped corpus answers module queries byte-identically
//! to a from-scratch corpus rebuilt from the surviving module sources —
//! and the whole transcript is identical across worker counts.

use f3m_core::corpus::{Corpus, CorpusConfig};
use f3m_ir::module::Module;
use f3m_ir::printer::print_module;
use f3m_prng::SmallRng;

fn workload(name: &str, seed: u64) -> Module {
    let mut spec = f3m_workloads::mini_suite()[0].clone();
    spec.functions = 18;
    spec.seed = seed;
    let mut m = f3m_workloads::build_module(&spec);
    m.name = name.to_string();
    m
}

/// Merge-eligible function names of `m`, in defined order.
fn eligible(m: &Module) -> Vec<String> {
    m.defined_functions()
        .into_iter()
        .filter(|&f| m.function(f).num_linked_insts() > 0)
        .map(|f| m.function(f).name.clone())
        .collect()
}

/// IR text of `m` with `dst`'s body replaced by `src`'s.
fn body_swap_patch(m: &Module, dst: &str, src: &str) -> String {
    let mut patched = m.clone();
    let d = patched.lookup_function(dst).unwrap();
    let s = patched.lookup_function(src).unwrap();
    patched.rename_function(d, format!("{dst}__old"));
    patched.rename_function(s, dst.to_string());
    print_module(&patched)
}

/// IR text of `m` with `src` renamed to `fresh` (self-transplant donor
/// for `ingest_function`: same module, so every callee it references is
/// already declared in the splice target).
fn rename_patch(m: &Module, src: &str, fresh: &str) -> String {
    let mut patched = m.clone();
    let s = patched.lookup_function(src).unwrap();
    patched.rename_function(s, fresh.to_string());
    print_module(&patched)
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Op {
    Ingest,
    Evict,
    Update,
    Touch,
    IngestFunction,
    Query,
}

/// One deterministic interleaving driven by `seed`, applied to a corpus
/// with `jobs` ingest workers. Returns the transcript of every query
/// result along the way. After each mutation, queries on the live
/// incremental corpus are compared byte-for-byte against a fresh corpus
/// rebuilt from the surviving module sources.
fn run_interleaving(seed: u64, jobs: usize, check_rebuild: bool) -> String {
    let cfg = CorpusConfig { jobs, ..CorpusConfig::default() };
    let corpus = Corpus::new(cfg.clone());
    let mut rng = SmallRng::seed_from_u64(seed);
    // Shadow state: live module names in ingest order. Sources are read
    // back through `module_source`, which re-renders exactly what the
    // corpus holds after function-level surgery.
    let mut live: Vec<String> = Vec::new();
    let mut next_module = 0u64;
    let mut next_fresh = 0u64;
    let mut transcript = String::new();

    for step in 0..40 {
        let op = match rng.gen_range(0..10u32) {
            0..=2 if live.len() < 5 => Op::Ingest,
            0..=2 => Op::Update,
            3 if live.len() > 1 => Op::Evict,
            3 => Op::Touch,
            4..=5 => Op::Update,
            6 => Op::Touch,
            7 => Op::IngestFunction,
            _ => Op::Query,
        };
        match op {
            Op::Ingest => {
                let name = format!("m{next_module}");
                next_module += 1;
                corpus.ingest(workload(&name, 100 + next_module)).unwrap();
                live.push(name);
            }
            Op::Evict => {
                let victim = live.remove(rng.gen_range(0..live.len()));
                corpus.evict(&victim).unwrap();
            }
            Op::Update | Op::Touch | Op::IngestFunction | Op::Query if live.is_empty() => {
                continue;
            }
            Op::Update => {
                let name = &live[rng.gen_range(0..live.len())];
                let m = f3m_ir::parser::parse_module(&corpus.module_source(name).unwrap())
                    .unwrap();
                let funcs = eligible(&m);
                let dst = &funcs[rng.gen_range(0..funcs.len())];
                // Swap within the family AND only between signature-
                // identical members (some siblings are retyped clones):
                // the module's driver calls must stay valid.
                let Some((fam, _)) = dst.rsplit_once('_') else { continue };
                let sig = |name: &str| {
                    let f = m.function(m.lookup_function(name).unwrap());
                    (f.params.clone(), f.ret_ty)
                };
                let dst_sig = sig(dst);
                let siblings: Vec<&String> = funcs
                    .iter()
                    .filter(|f| {
                        *f != dst
                            && f.rsplit_once('_').map(|(p, _)| p) == Some(fam)
                            && sig(f) == dst_sig
                    })
                    .collect();
                if siblings.is_empty() {
                    continue;
                }
                let src = siblings[rng.gen_range(0..siblings.len())];
                let patch = body_swap_patch(&m, dst, src);
                let up = corpus.update_function(name, dst, Some(&patch)).unwrap();
                transcript.push_str(&format!(
                    "step {step}: update {name}.{dst} changed={}\n",
                    up.changed
                ));
            }
            Op::Touch => {
                let name = &live[rng.gen_range(0..live.len())];
                let m = f3m_ir::parser::parse_module(&corpus.module_source(name).unwrap())
                    .unwrap();
                let funcs = eligible(&m);
                let func = &funcs[rng.gen_range(0..funcs.len())];
                let up = corpus.update_function(name, func, None).unwrap();
                assert!(!up.changed, "a touch never changes IR");
            }
            Op::IngestFunction => {
                let name = &live[rng.gen_range(0..live.len())];
                let m = f3m_ir::parser::parse_module(&corpus.module_source(name).unwrap())
                    .unwrap();
                let funcs = eligible(&m);
                let src = &funcs[rng.gen_range(0..funcs.len())];
                let fresh = format!("x{next_fresh}");
                next_fresh += 1;
                let patch = rename_patch(&m, src, &fresh);
                corpus.ingest_function(name, &fresh, &patch).unwrap();
                transcript.push_str(&format!("step {step}: ingest_function {name}.{fresh}\n"));
            }
            Op::Query => {
                let name = &live[rng.gen_range(0..live.len())];
                let (_, results) = corpus.query_module(name, 5).unwrap();
                transcript.push_str(&format!("step {step}: query {name} {results:?}\n"));
            }
        }

        if check_rebuild && op != Op::Query {
            // From-scratch rebuild of the surviving state: every live
            // module's current source, ingested in order, into a fresh
            // corpus. Every module query must match byte-for-byte.
            let rebuilt = Corpus::new(cfg.clone());
            for name in &live {
                let src = corpus.module_source(name).unwrap();
                rebuilt.ingest(f3m_ir::parser::parse_module(&src).unwrap()).unwrap();
            }
            for name in &live {
                let (_, inc) = corpus.query_module(name, 5).unwrap();
                let (_, fresh) = rebuilt.query_module(name, 5).unwrap();
                assert_eq!(
                    format!("{inc:?}"),
                    format!("{fresh:?}"),
                    "incremental vs rebuilt diverged on `{name}` after step {step} ({op:?})"
                );
            }
        }
    }

    // The interleaving reused memoized ranks: the equivalence above is
    // only interesting if some queries were actually answered from memo.
    let stats = corpus.stats();
    assert!(stats.memo_hits > 0, "interleaving never exercised the memo layer");
    assert!(stats.funcs_invalidated > 0, "interleaving never invalidated anything");
    transcript
}

#[test]
fn incremental_matches_rebuild_after_every_prefix() {
    for seed in [7, 42] {
        run_interleaving(seed, 1, true);
    }
}

#[test]
fn interleaving_transcript_is_identical_across_jobs() {
    // The rebuild-equivalence is checked by the test above; here the
    // whole transcript (mutation summaries + every query result) must be
    // byte-identical across ingest worker counts.
    let t1 = run_interleaving(42, 1, false);
    let t2 = run_interleaving(42, 2, false);
    let t8 = run_interleaving(42, 8, false);
    assert_eq!(t1, t2, "jobs 1 vs 2 transcripts diverged");
    assert_eq!(t1, t8, "jobs 1 vs 8 transcripts diverged");
    assert!(t1.contains("query"), "transcript has no queries");
    assert!(t1.contains("update"), "transcript has no updates");
}
