//! Equivalence of the packed struct-of-arrays fingerprint storage with
//! the legacy per-function representation, and of the pipelines built on
//! top of it.
//!
//! The packed store is a pure layout change: for every backend the
//! signatures and band keys it hands back must be byte-identical to the
//! per-function vectors they were packed from, candidate sets must not
//! depend on the shard count, and the merged module must not depend on
//! the jobs level. Any divergence here means the SoA refactor changed
//! semantics, not just cache behavior.

use f3m_core::pass::{run_pass, PassConfig};
use f3m_fingerprint::encode::encode_function;
use f3m_fingerprint::lsh::band_keys_for;
use f3m_fingerprint::{
    backend_for, BackendKind, LshIndex, MergeParams, PackedFingerprintStore, ShardedLshIndex,
};
use f3m_ir::module::Module;

fn workload() -> Module {
    let mut spec = f3m_workloads::mini_suite()[1].clone();
    spec.functions = 72;
    spec.seed = 5150;
    f3m_workloads::build_module(&spec)
}

fn encoded_functions(m: &Module) -> Vec<Vec<u32>> {
    m.defined_functions()
        .into_iter()
        .map(|f| encode_function(&m.types, m.function(f)))
        .collect()
}

/// Packed rows reproduce the per-function signatures and band keys
/// byte-for-byte, for every backend, and survive a pool round-trip.
#[test]
fn packed_rows_match_per_function_storage() {
    let m = workload();
    let encs = encoded_functions(&m);
    for kind in BackendKind::ALL {
        let params = MergeParams::static_default().with_backend(kind);
        let backend = backend_for(kind, params.k);

        // Legacy shape: one Vec per function.
        let legacy: Vec<(Vec<u64>, Vec<_>)> = encs
            .iter()
            .map(|e| {
                let sig = backend.signature(e);
                let keys = band_keys_for(params.lsh, &sig);
                (sig, keys)
            })
            .collect();

        let mut store =
            PackedFingerprintStore::with_capacity(params.k, params.lsh.bands, legacy.len());
        for (i, (sig, keys)) in legacy.iter().enumerate() {
            assert_eq!(store.push_with_keys(sig, keys), i, "rows are dense");
        }
        assert_eq!(store.len(), legacy.len());
        assert_eq!(store.bytes_per_fn(), 8 * params.k + 4 * params.lsh.bands);

        for (i, (sig, keys)) in legacy.iter().enumerate() {
            assert_eq!(store.sig(i), &sig[..], "{} sig row {i}", kind.name());
            assert_eq!(store.keys(i), &keys[..], "{} key row {i}", kind.name());
        }

        // Pool round-trip (the snapshot wire path) is lossless.
        let rt = PackedFingerprintStore::from_pools(
            params.k,
            params.lsh.bands,
            store.sig_pool().to_vec(),
            store.key_pool().to_vec(),
        )
        .expect("pool lengths are consistent");
        assert_eq!(rt.len(), store.len());
        for i in 0..store.len() {
            assert_eq!(rt.sig(i), store.sig(i));
            assert_eq!(rt.keys(i), store.keys(i));
        }
    }
}

/// Candidate sets from the sharded index match the unsharded one for
/// every shard count — banding decides the bucket, sharding only decides
/// who owns it.
#[test]
fn candidate_sets_are_shard_count_invariant() {
    let m = workload();
    let encs = encoded_functions(&m);
    let params = MergeParams::static_default();
    let backend = backend_for(params.backend, params.k);
    let keys: Vec<Vec<_>> = encs
        .iter()
        .map(|e| band_keys_for(params.lsh, &backend.signature(e)))
        .collect();

    let mut flat: LshIndex<usize> = LshIndex::new(params.lsh);
    for (i, e) in encs.iter().enumerate() {
        flat.insert(i, &backend.signature(e));
    }

    for shards in 1..=5 {
        let sharded: ShardedLshIndex<usize> = ShardedLshIndex::new(params.lsh, shards);
        for (i, k) in keys.iter().enumerate() {
            sharded.insert_with_keys(i, k);
        }
        for (i, k) in keys.iter().enumerate() {
            let sig = backend.signature(&encs[i]);
            let (a, _) = flat.candidates(&sig, i);
            let (b, _) = sharded.candidates_counted(k, i);
            assert_eq!(a, b, "candidates for fn {i} with {shards} shard(s)");
        }
    }
}

/// The merged module is identical at every jobs level — parallelism may
/// only change wall-clock time, never output.
#[test]
fn merge_output_is_jobs_invariant() {
    let mut reference: Option<String> = None;
    for jobs in [1usize, 2, 8] {
        let mut m = workload();
        let report = run_pass(&mut m, &PassConfig::f3m().with_jobs(jobs));
        f3m_ir::verify::verify_module(&m).expect("merged module verifies");
        assert!(report.stats.merges_committed > 0, "workload produces merges");
        let printed = f3m_ir::printer::print_module(&m);
        match &reference {
            None => reference = Some(printed),
            Some(r) => assert_eq!(r, &printed, "jobs={jobs} diverged from jobs=1"),
        }
    }
}
