//! Property-based tests of the alignment algorithms.

use proptest::prelude::*;

use f3m_core::align::{linear_block_align, needleman_wunsch, AlignEntry};

/// Reference LCS length by naive recursion (only for tiny inputs).
fn lcs_brute(a: &[u32], b: &[u32]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    if a[0] == b[0] {
        1 + lcs_brute(&a[1..], &b[1..])
    } else {
        lcs_brute(&a[1..], b).max(lcs_brute(a, &b[1..]))
    }
}

fn small_seq() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..6, 0..9)
}

proptest! {
    #[test]
    fn nw_matches_equal_brute_force_lcs(a in small_seq(), b in small_seq()) {
        let nw = needleman_wunsch(&a, &b);
        prop_assert_eq!(nw.matches, lcs_brute(&a, &b));
    }

    #[test]
    fn linear_never_beats_nw(a in small_seq(), b in small_seq()) {
        let nw = needleman_wunsch(&a, &b);
        let lin = linear_block_align(&a, &b);
        prop_assert!(lin.matches <= nw.matches);
    }

    #[test]
    fn alignment_is_symmetric_in_match_count(a in small_seq(), b in small_seq()) {
        let ab = needleman_wunsch(&a, &b);
        let ba = needleman_wunsch(&b, &a);
        prop_assert_eq!(ab.matches, ba.matches);
        prop_assert!((ab.ratio() - ba.ratio()).abs() < 1e-12);
    }

    #[test]
    fn entries_form_monotone_cover(a in small_seq(), b in small_seq()) {
        for align in [needleman_wunsch(&a, &b), linear_block_align(&a, &b)] {
            // Indices strictly increase per side and cover each exactly once.
            let (mut li, mut rj) = (0usize, 0usize);
            for e in &align.entries {
                match *e {
                    AlignEntry::Match(i, j) => {
                        prop_assert_eq!(i, li);
                        prop_assert_eq!(j, rj);
                        prop_assert_eq!(a[i], b[j], "matched entries must be equal");
                        li += 1;
                        rj += 1;
                    }
                    AlignEntry::GapRight(i) => {
                        prop_assert_eq!(i, li);
                        li += 1;
                    }
                    AlignEntry::GapLeft(j) => {
                        prop_assert_eq!(j, rj);
                        rj += 1;
                    }
                }
            }
            prop_assert_eq!(li, a.len());
            prop_assert_eq!(rj, b.len());
            prop_assert_eq!(align.total, a.len() + b.len());
        }
    }

    #[test]
    fn ratio_is_one_iff_identical_for_nonempty(a in prop::collection::vec(0u32..6, 1..9)) {
        let self_align = needleman_wunsch(&a, &a);
        prop_assert_eq!(self_align.ratio(), 1.0);
        // A strictly different same-length sequence cannot reach ratio 1.
        let mut b = a.clone();
        b[0] = b[0].wrapping_add(100);
        let other = needleman_wunsch(&a, &b);
        prop_assert!(other.ratio() < 1.0);
    }

    #[test]
    fn identical_prefix_and_suffix_always_match_in_linear(
        prefix in prop::collection::vec(0u32..6, 1..5),
        mid_a in 100u32..110,
        mid_b in 200u32..210,
        suffix in prop::collection::vec(0u32..6, 1..5),
    ) {
        // left = prefix ++ [mid_a] ++ suffix, right = prefix ++ [mid_b] ++ suffix.
        let mut a = prefix.clone();
        a.push(mid_a);
        a.extend_from_slice(&suffix);
        let mut b = prefix.clone();
        b.push(mid_b);
        b.extend_from_slice(&suffix);
        let lin = linear_block_align(&a, &b);
        prop_assert!(
            lin.matches >= prefix.len() + suffix.len(),
            "single substitution must not desync the linear aligner: {} < {}",
            lin.matches, prefix.len() + suffix.len()
        );
    }
}
