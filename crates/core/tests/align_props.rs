//! Randomized property tests of the alignment algorithms, driven by a
//! deterministic seeded generator (the workspace builds offline, so no
//! proptest — each test sweeps a fixed number of random cases instead).

use f3m_core::align::{linear_block_align, needleman_wunsch, AlignEntry};
use f3m_prng::SmallRng;

/// Reference LCS length by naive recursion (only for tiny inputs).
fn lcs_brute(a: &[u32], b: &[u32]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    if a[0] == b[0] {
        1 + lcs_brute(&a[1..], &b[1..])
    } else {
        lcs_brute(&a[1..], b).max(lcs_brute(a, &b[1..]))
    }
}

/// A short sequence over a small alphabet (0..6), length 0..9.
fn small_seq(rng: &mut SmallRng) -> Vec<u32> {
    let len = rng.gen_range(0..9usize);
    (0..len).map(|_| rng.gen_range(0..6u32)).collect()
}

const CASES: usize = 256;

#[test]
fn nw_matches_equal_brute_force_lcs() {
    let mut rng = SmallRng::seed_from_u64(1);
    for _ in 0..CASES {
        let a = small_seq(&mut rng);
        let b = small_seq(&mut rng);
        let nw = needleman_wunsch(&a, &b);
        assert_eq!(nw.matches, lcs_brute(&a, &b), "{a:?} vs {b:?}");
    }
}

#[test]
fn linear_never_beats_nw() {
    let mut rng = SmallRng::seed_from_u64(2);
    for _ in 0..CASES {
        let a = small_seq(&mut rng);
        let b = small_seq(&mut rng);
        let nw = needleman_wunsch(&a, &b);
        let lin = linear_block_align(&a, &b);
        assert!(lin.matches <= nw.matches, "{a:?} vs {b:?}");
    }
}

#[test]
fn alignment_is_symmetric_in_match_count() {
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..CASES {
        let a = small_seq(&mut rng);
        let b = small_seq(&mut rng);
        let ab = needleman_wunsch(&a, &b);
        let ba = needleman_wunsch(&b, &a);
        assert_eq!(ab.matches, ba.matches, "{a:?} vs {b:?}");
        assert!((ab.ratio() - ba.ratio()).abs() < 1e-12);
    }
}

#[test]
fn entries_form_monotone_cover() {
    let mut rng = SmallRng::seed_from_u64(4);
    for _ in 0..CASES {
        let a = small_seq(&mut rng);
        let b = small_seq(&mut rng);
        for align in [needleman_wunsch(&a, &b), linear_block_align(&a, &b)] {
            // Indices strictly increase per side and cover each exactly once.
            let (mut li, mut rj) = (0usize, 0usize);
            for e in &align.entries {
                match *e {
                    AlignEntry::Match(i, j) => {
                        assert_eq!(i, li);
                        assert_eq!(j, rj);
                        assert_eq!(a[i], b[j], "matched entries must be equal");
                        li += 1;
                        rj += 1;
                    }
                    AlignEntry::GapRight(i) => {
                        assert_eq!(i, li);
                        li += 1;
                    }
                    AlignEntry::GapLeft(j) => {
                        assert_eq!(j, rj);
                        rj += 1;
                    }
                }
            }
            assert_eq!(li, a.len());
            assert_eq!(rj, b.len());
            assert_eq!(align.total, a.len() + b.len());
        }
    }
}

#[test]
fn ratio_is_one_iff_identical_for_nonempty() {
    let mut rng = SmallRng::seed_from_u64(5);
    for _ in 0..CASES {
        let len = rng.gen_range(1..9usize);
        let a: Vec<u32> = (0..len).map(|_| rng.gen_range(0..6u32)).collect();
        let self_align = needleman_wunsch(&a, &a);
        assert_eq!(self_align.ratio(), 1.0);
        // A strictly different same-length sequence cannot reach ratio 1.
        let mut b = a.clone();
        b[0] = b[0].wrapping_add(100);
        let other = needleman_wunsch(&a, &b);
        assert!(other.ratio() < 1.0);
    }
}

#[test]
fn identical_prefix_and_suffix_always_match_in_linear() {
    let mut rng = SmallRng::seed_from_u64(6);
    for _ in 0..CASES {
        let pre_len = rng.gen_range(1..5usize);
        let suf_len = rng.gen_range(1..5usize);
        let prefix: Vec<u32> = (0..pre_len).map(|_| rng.gen_range(0..6u32)).collect();
        let suffix: Vec<u32> = (0..suf_len).map(|_| rng.gen_range(0..6u32)).collect();
        let mid_a = rng.gen_range(100..110u32);
        let mid_b = rng.gen_range(200..210u32);
        // left = prefix ++ [mid_a] ++ suffix, right = prefix ++ [mid_b] ++ suffix.
        let mut a = prefix.clone();
        a.push(mid_a);
        a.extend_from_slice(&suffix);
        let mut b = prefix.clone();
        b.push(mid_b);
        b.extend_from_slice(&suffix);
        let lin = linear_block_align(&a, &b);
        assert!(
            lin.matches >= prefix.len() + suffix.len(),
            "single substitution must not desync the linear aligner: {} < {}",
            lin.matches,
            prefix.len() + suffix.len()
        );
    }
}
