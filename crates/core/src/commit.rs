//! Commit bookkeeping: the module-wide reference index and the
//! profitability-checked commit of a planned merge.
//!
//! Splitting a pair out of the module is the only stage that mutates it:
//! the merged function is appended, every call site of the originals is
//! redirected, and each original is replaced by a thunk (or dropped to a
//! declaration when module-private and never address-taken). [`Committer`]
//! owns all of that state so the pass driver stays a pure pipeline over
//! immutable queries.

use std::collections::{HashMap, HashSet};

use f3m_fingerprint::par::par_map_indexed;
use f3m_ir::function::{Function, Linkage};
use f3m_ir::ids::{FuncId, InstId};
use f3m_ir::inst::Opcode;
use f3m_ir::module::Module;
use f3m_ir::size::function_size;
use f3m_ir::value::ValueKind;
use f3m_ir::verify::verify_function;

use crate::block_pairing::PairPlan;
use crate::codegen::{build_merged, build_thunk, MergeConfig};

/// Module-wide reference index, maintained incrementally across commits so
/// that call-site redirection does not rescan the whole module per merge
/// (which would reintroduce a quadratic term the paper works to remove).
struct RefIndex {
    /// callee -> call/invoke sites `(owner function, instruction, owner
    /// version at recording time)`.
    call_sites: HashMap<FuncId, Vec<(FuncId, InstId, u32)>>,
    /// Functions whose address escapes a direct-call position; these must
    /// keep a thunk.
    address_taken: HashSet<FuncId>,
    /// Version per function; bumped when a body is replaced wholesale,
    /// invalidating recorded sites inside it.
    versions: HashMap<FuncId, u32>,
}

/// Function references found in one function body: direct-call sites and
/// address-escaping uses. The per-owner scan is side-effect free so the
/// initial index build can fan out across threads.
struct ScanResult {
    owner: FuncId,
    sites: Vec<(FuncId, InstId)>,
    address_taken: Vec<FuncId>,
}

fn scan_one(m: &Module, owner: FuncId) -> ScanResult {
    let mut res = ScanResult { owner, sites: Vec::new(), address_taken: Vec::new() };
    let f = m.function(owner);
    if f.is_declaration {
        return res;
    }
    for (iid, inst) in f.linked_insts() {
        for (slot, &op) in inst.operands.iter().enumerate() {
            if let ValueKind::FuncRef(target) = f.value(op).kind {
                let is_callee = slot == 0 && matches!(inst.op, Opcode::Call | Opcode::Invoke);
                if is_callee {
                    res.sites.push((target, iid));
                } else {
                    res.address_taken.push(target);
                }
            }
        }
    }
    res
}

impl RefIndex {
    /// Scans every function body, using up to `jobs` threads. The partial
    /// results are merged in function order, so the index is identical for
    /// any job count.
    fn build(m: &Module, jobs: usize) -> RefIndex {
        let owners: Vec<FuncId> = m.functions().map(|(id, _)| id).collect();
        let partials = par_map_indexed(owners.len(), jobs, |i| scan_one(m, owners[i]));
        let mut idx = RefIndex {
            call_sites: HashMap::new(),
            address_taken: HashSet::new(),
            versions: HashMap::new(),
        };
        for p in partials {
            // All versions are 0 at build time.
            for (target, iid) in p.sites {
                idx.call_sites.entry(target).or_default().push((p.owner, iid, 0));
            }
            idx.address_taken.extend(p.address_taken);
        }
        idx
    }

    fn version(&self, f: FuncId) -> u32 {
        self.versions.get(&f).copied().unwrap_or(0)
    }

    /// Records every function reference inside `owner`'s current body.
    fn scan_function(&mut self, m: &Module, owner: FuncId) {
        let res = scan_one(m, owner);
        let version = self.version(owner);
        for (target, iid) in res.sites {
            self.call_sites.entry(target).or_default().push((owner, iid, version));
        }
        self.address_taken.extend(res.address_taken);
    }

    /// Invalidates all recorded sites inside `owner` (its body is being
    /// replaced).
    fn invalidate_owner(&mut self, owner: FuncId) {
        *self.versions.entry(owner).or_insert(0) += 1;
    }

    /// Rewrites every live call site of `target` to call `merged` with the
    /// function identifier and remapped arguments, re-registering the
    /// rewritten sites under `merged`.
    fn redirect(
        &mut self,
        m: &mut Module,
        target: FuncId,
        merged: FuncId,
        fid_value: bool,
        param_map: &[usize],
    ) {
        let mut scratch = f3m_ir::types::TypeStore::new();
        let ptr_ty = scratch.ptr();
        let bool_ty = scratch.bool();
        let merged_params = m.function(merged).params.clone();
        let sites = self.call_sites.remove(&target).unwrap_or_default();
        let mut moved = Vec::with_capacity(sites.len());
        for (owner, iid, version) in sites {
            if version != self.version(owner) {
                continue; // stale: the owner's body was replaced
            }
            let old_args: Vec<f3m_ir::ids::ValueId> =
                m.function(owner).inst(iid).operands[1..].to_vec();
            let (f, types) = m.func_mut_and_types(owner);
            let callee = f.func_ref(merged, ptr_ty);
            let fid_const = f.const_int(types, bool_ty, i64::from(fid_value));
            let mut new_ops = vec![callee, fid_const];
            for (slot, &ty) in merged_params.iter().enumerate().skip(1) {
                match param_map.iter().position(|&s| s == slot) {
                    Some(orig_idx) => new_ops.push(old_args[orig_idx]),
                    None => {
                        let u = f.undef(ty);
                        new_ops.push(u);
                    }
                }
            }
            f.inst_mut(iid).operands = new_ops;
            moved.push((owner, iid, version));
        }
        self.call_sites.entry(merged).or_default().extend(moved);
    }
}

/// Fixed size overhead of committing a merge: merged-function overhead +
/// entry dispatch + one thunk per non-droppable original, minus the two
/// eliminated original-function overheads. Used by the pass's
/// alignment-profitability gate before any code is generated.
pub fn fixed_overhead(drop1: bool, drop2: bool) -> i64 {
    let thunk_cost = |dropped: bool| if dropped { 0i64 } else { 18 };
    14 + thunk_cost(drop1) + thunk_cost(drop2) - 24
}

/// Why commits were rejected, broken out by the stage that said no. All
/// counts are deterministic for a fixed workload (the commit walk is
/// serial), so they participate in the perf-regression gate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommitRejects {
    /// The code generator could not build a merged body for the plan.
    pub build: u64,
    /// The merged body failed verification (a codegen bug; the candidate
    /// is dropped rather than corrupting the module).
    pub verify: u64,
    /// The merged body verified but did not shrink the module.
    pub size: u64,
}

impl CommitRejects {
    /// Total rejected commits across all causes.
    pub fn total(&self) -> u64 {
        self.build + self.verify + self.size
    }
}

/// Owns the reference index and performs profitability-checked commits.
pub struct Committer {
    refs: RefIndex,
    epoch: u64,
    rejects: CommitRejects,
}

impl Committer {
    /// Builds the initial reference index over `m` (parallel across up to
    /// `jobs` threads, deterministic for any job count).
    pub fn build(m: &Module, jobs: usize) -> Committer {
        Committer { refs: RefIndex::build(m, jobs), epoch: 0, rejects: CommitRejects::default() }
    }

    /// Commit rejections observed so far, by cause.
    pub fn rejects(&self) -> CommitRejects {
        self.rejects
    }

    /// Generation counter, bumped on every successful commit — the only
    /// event that can change [`droppable`](Committer::droppable) answers
    /// (new bodies may take addresses). Callers memoizing `droppable` use
    /// this to invalidate their memo instead of re-querying per pair.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether `f`'s original symbol can disappear entirely after a merge:
    /// module-private and never referenced outside a direct-call position.
    pub fn droppable(&self, m: &Module, f: FuncId) -> bool {
        m.function(f).linkage == Linkage::Internal && !self.refs.address_taken.contains(&f)
    }

    /// Generates the merged function for `(f1, f2)` under `plan`, verifies
    /// it, and commits it if the post-merge size (merged body + surviving
    /// thunks) beats the pair's current size. On success the module is
    /// rewritten (call sites redirected, originals replaced) and the size
    /// saving `size_before - size_after` is returned; on any failure the
    /// module is left unchanged and `None` is returned.
    pub fn try_commit(
        &mut self,
        m: &mut Module,
        f1: FuncId,
        f2: FuncId,
        plan: &PairPlan,
        config: MergeConfig,
    ) -> Option<i64> {
        let drop1 = self.droppable(m, f1);
        let drop2 = self.droppable(m, f2);
        let name = m.fresh_name("__merged");
        let Ok(mf) = build_merged(m, f1, f2, plan, config, name) else {
            self.rejects.build += 1;
            return None;
        };
        let size_before = function_size(m.function(f1)) + function_size(m.function(f2));
        let merged_size = function_size(&mf.func);
        let merged_id = m.add_function(mf.func);
        if verify_function(m, merged_id).is_err() {
            // A verifier failure here is a code generator bug; drop the
            // candidate rather than corrupt the module.
            m.remove_last_function(merged_id);
            self.rejects.verify += 1;
            return None;
        }
        // A function whose address is never taken has all its call sites
        // redirected into the merged body; if it is also module-private,
        // the original symbol disappears entirely. Otherwise a thunk
        // preserves the symbol.
        let thunk1 = build_thunk(m, f1, merged_id, false, &mf.param_map1);
        let thunk2 = build_thunk(m, f2, merged_id, true, &mf.param_map2);
        let after1 = if drop1 { 0 } else { function_size(&thunk1) };
        let after2 = if drop2 { 0 } else { function_size(&thunk2) };
        let size_after = merged_size + after1 + after2;
        if size_after >= size_before {
            m.remove_last_function(merged_id);
            self.rejects.size += 1;
            return None;
        }
        // Register the merged body's own call sites first so recursive
        // references to f1/f2 get redirected too.
        self.refs.scan_function(m, merged_id);
        self.refs.redirect(m, f1, merged_id, false, &mf.param_map1);
        self.refs.redirect(m, f2, merged_id, true, &mf.param_map2);
        self.refs.invalidate_owner(f1);
        self.refs.invalidate_owner(f2);
        for (f, dropped, thunk) in [(f1, drop1, thunk1), (f2, drop2, thunk2)] {
            if dropped {
                let old = m.function(f);
                m.replace_function(
                    f,
                    Function::new_declaration(old.name.clone(), old.params.clone(), old.ret_ty),
                );
            } else {
                m.replace_function(f, thunk);
            }
        }
        // Thunk bodies call the merged function; register those new sites
        // under the bumped versions.
        self.refs.scan_function(m, f1);
        self.refs.scan_function(m, f2);
        self.epoch += 1;
        Some(size_before as i64 - size_after as i64)
    }
}
