//! Sequence alignment of instruction streams.
//!
//! Two alignment granularities are provided, mirroring the lineage of the
//! paper's systems:
//!
//! - [`needleman_wunsch`] aligns whole-function encoded streams (as SalSSA
//!   does). The merging pass uses it only for *statistics* — the
//!   "alignment ratio" plotted in Figures 4 and 10.
//! - [`linear_block_align`] is HyFM's cheap linear pass over two blocks'
//!   instruction sequences; the code generator merges the aligned runs.
//!
//! Both have allocation-free variants ([`needleman_wunsch_with`] /
//! [`linear_block_align_with`]) that reuse an [`AlignScratch`]'s DP table
//! and entries buffer across calls and return a borrowed [`AlignRef`];
//! the owning signatures are thin wrappers over a fresh scratch. The
//! merge loop holds one scratch per worker thread, so the alignment hot
//! path performs no per-call allocation.

use f3m_ir::ids::InstId;

/// One column of an alignment: a matched pair or a one-sided gap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlignEntry {
    /// Instructions at these positions are equivalent (same encoding).
    Match(usize, usize),
    /// Left instruction has no counterpart.
    GapRight(usize),
    /// Right instruction has no counterpart.
    GapLeft(usize),
}

/// Result of aligning two sequences.
#[derive(Clone, Debug, Default)]
pub struct Alignment {
    /// Alignment columns in order.
    pub entries: Vec<AlignEntry>,
    /// Number of matched pairs.
    pub matches: usize,
    /// `len(left) + len(right)`.
    pub total: usize,
}

impl Alignment {
    /// Fraction of instructions that participate in a match:
    /// `2 * matches / (len_l + len_r)`; `1.0` for two empty sequences.
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        2.0 * self.matches as f64 / self.total as f64
    }
}

/// Reusable alignment working memory: the Needleman–Wunsch DP table and a
/// staging buffer for alignment entries. One scratch per worker thread
/// makes the alignment hot path allocation-free: candidate alignments are
/// scored through the borrowed [`AlignRef`] view and discarded, and only
/// the winning alignment is materialized with [`AlignRef::to_owned`].
#[derive(Debug, Default)]
pub struct AlignScratch {
    dp: Vec<u32>,
    entries: Vec<AlignEntry>,
    stats: AlignScratchStats,
}

/// Work counters accumulated by a scratch across alignment calls.
///
/// `cells` is a pure function of the aligned sequence lengths, so summing
/// it over all alignments of a pass is deterministic and job-count
/// independent. `dp_grows` depends on which pairs a particular worker
/// thread happened to process, so it is *per-scratch* telemetry only —
/// never aggregate it into jobs-invariant stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AlignScratchStats {
    /// DP cells computed by [`needleman_wunsch_with`] plus positions
    /// advanced by [`linear_block_align_with`] — the alignment work count.
    pub cells: u64,
    /// Times the DP buffer had to grow (capacity reallocation). A healthy
    /// reuse pattern grows a handful of times then plateaus.
    pub dp_grows: u64,
}

impl AlignScratch {
    /// Creates an empty scratch; buffers grow on first use and are then
    /// reused across calls.
    pub fn new() -> AlignScratch {
        AlignScratch::default()
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> AlignScratchStats {
        self.stats
    }

    /// Resets the work counters (buffer capacity is retained).
    pub fn reset_stats(&mut self) {
        self.stats = AlignScratchStats::default();
    }
}

/// An alignment whose entries live in an [`AlignScratch`], valid until the
/// scratch's next alignment call.
#[derive(Debug)]
pub struct AlignRef<'a> {
    /// Alignment columns in order, borrowed from the scratch.
    pub entries: &'a [AlignEntry],
    /// Number of matched pairs.
    pub matches: usize,
    /// `len(left) + len(right)`.
    pub total: usize,
}

impl AlignRef<'_> {
    /// Copies the borrowed alignment into an owned [`Alignment`].
    pub fn to_owned(&self) -> Alignment {
        Alignment { entries: self.entries.to_vec(), matches: self.matches, total: self.total }
    }

    /// Same as [`Alignment::ratio`].
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        2.0 * self.matches as f64 / self.total as f64
    }
}

/// Global alignment maximizing the number of matched (equal-encoding)
/// pairs — Needleman–Wunsch with unit match score and zero gap penalty,
/// i.e. a longest-common-subsequence alignment.
///
/// Quadratic in the sequence lengths; use on function-sized inputs only.
pub fn needleman_wunsch(left: &[u32], right: &[u32]) -> Alignment {
    needleman_wunsch_with(&mut AlignScratch::new(), left, right).to_owned()
}

/// [`needleman_wunsch`] into reusable buffers: no allocation once the
/// scratch has grown to the working-set size.
pub fn needleman_wunsch_with<'a>(
    scratch: &'a mut AlignScratch,
    left: &[u32],
    right: &[u32],
) -> AlignRef<'a> {
    let (n, m) = (left.len(), right.len());
    scratch.stats.cells += (n as u64) * (m as u64);
    // dp[i][j] = best matches aligning left[i..] with right[j..].
    scratch.dp.clear();
    if scratch.dp.capacity() < (n + 1) * (m + 1) {
        scratch.stats.dp_grows += 1;
    }
    scratch.dp.resize((n + 1) * (m + 1), 0);
    let dp = &mut scratch.dp;
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            let mut best = dp[idx(i + 1, j)].max(dp[idx(i, j + 1)]);
            if left[i] == right[j] {
                best = best.max(dp[idx(i + 1, j + 1)] + 1);
            }
            dp[idx(i, j)] = best;
        }
    }
    // Traceback.
    scratch.entries.clear();
    let entries = &mut scratch.entries;
    let (mut i, mut j) = (0, 0);
    let mut matches = 0usize;
    while i < n && j < m {
        if left[i] == right[j] && dp[idx(i, j)] == dp[idx(i + 1, j + 1)] + 1 {
            entries.push(AlignEntry::Match(i, j));
            matches += 1;
            i += 1;
            j += 1;
        } else if dp[idx(i + 1, j)] >= dp[idx(i, j + 1)] {
            entries.push(AlignEntry::GapRight(i));
            i += 1;
        } else {
            entries.push(AlignEntry::GapLeft(j));
            j += 1;
        }
    }
    while i < n {
        entries.push(AlignEntry::GapRight(i));
        i += 1;
    }
    while j < m {
        entries.push(AlignEntry::GapLeft(j));
        j += 1;
    }
    AlignRef { entries: &scratch.entries, matches, total: n + m }
}

/// HyFM's linear block alignment: a single greedy pass that matches equal
/// encodings in order. Runs in `O(n + m)`; strictly weaker than
/// [`needleman_wunsch`] but what HyFM (and therefore F3M) uses for merging.
///
/// The two-pointer scheme advances over both sequences: on a mismatch it
/// skips the side whose *next* instruction re-synchronizes sooner (peeking
/// one ahead), which handles single insertions/deletions — the dominant
/// mutation between similar functions.
pub fn linear_block_align(left: &[u32], right: &[u32]) -> Alignment {
    linear_block_align_with(&mut AlignScratch::new(), left, right).to_owned()
}

/// [`linear_block_align`] into a reusable entries buffer: no allocation
/// once the scratch has grown to the working-set size.
pub fn linear_block_align_with<'a>(
    scratch: &'a mut AlignScratch,
    left: &[u32],
    right: &[u32],
) -> AlignRef<'a> {
    let (n, m) = (left.len(), right.len());
    // The linear pass touches each position once; count both sides as its
    // work contribution, commensurable with the DP cell count.
    scratch.stats.cells += (n + m) as u64;
    scratch.entries.clear();
    let entries = &mut scratch.entries;
    let (mut i, mut j) = (0, 0);
    let mut matches = 0usize;
    while i < n && j < m {
        if left[i] == right[j] {
            entries.push(AlignEntry::Match(i, j));
            matches += 1;
            i += 1;
            j += 1;
            continue;
        }
        // Peek: does skipping one on either side resynchronize?
        let skip_left_syncs = i + 1 < n && left[i + 1] == right[j];
        let skip_right_syncs = j + 1 < m && left[i] == right[j + 1];
        if skip_left_syncs && !skip_right_syncs {
            entries.push(AlignEntry::GapRight(i));
            i += 1;
        } else if skip_right_syncs && !skip_left_syncs {
            entries.push(AlignEntry::GapLeft(j));
            j += 1;
        } else {
            // Mutual mismatch: emit both as gaps.
            entries.push(AlignEntry::GapRight(i));
            entries.push(AlignEntry::GapLeft(j));
            i += 1;
            j += 1;
        }
    }
    while i < n {
        entries.push(AlignEntry::GapRight(i));
        i += 1;
    }
    while j < m {
        entries.push(AlignEntry::GapLeft(j));
        j += 1;
    }
    AlignRef { entries: &scratch.entries, matches, total: n + m }
}

/// Convenience: the matched pairs of an alignment as instruction-id pairs,
/// given the id vectors the encodings came from.
pub fn matched_inst_pairs(
    align: &Alignment,
    left_ids: &[InstId],
    right_ids: &[InstId],
) -> Vec<(InstId, InstId)> {
    align
        .entries
        .iter()
        .filter_map(|e| match e {
            AlignEntry::Match(i, j) => Some((left_ids[*i], right_ids[*j])),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_fully_match() {
        let s = [1u32, 2, 3, 4];
        let a = needleman_wunsch(&s, &s);
        assert_eq!(a.matches, 4);
        assert_eq!(a.ratio(), 1.0);
        let l = linear_block_align(&s, &s);
        assert_eq!(l.matches, 4);
    }

    #[test]
    fn disjoint_sequences_never_match() {
        let a = needleman_wunsch(&[1, 2, 3], &[4, 5, 6]);
        assert_eq!(a.matches, 0);
        assert_eq!(a.ratio(), 0.0);
    }

    #[test]
    fn nw_finds_lcs_through_insertion() {
        // right = left with an insertion in the middle.
        let left = [1u32, 2, 3, 4, 5];
        let right = [1u32, 2, 9, 3, 4, 5];
        let a = needleman_wunsch(&left, &right);
        assert_eq!(a.matches, 5);
        assert!((a.ratio() - 10.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn nw_handles_substitution() {
        let left = [1u32, 2, 3, 4];
        let right = [1u32, 9, 3, 4];
        let a = needleman_wunsch(&left, &right);
        assert_eq!(a.matches, 3);
    }

    #[test]
    fn linear_align_recovers_from_single_insertion() {
        let left = [1u32, 2, 3, 4, 5];
        let right = [1u32, 2, 9, 3, 4, 5];
        let a = linear_block_align(&left, &right);
        assert_eq!(a.matches, 5, "resyncs after the inserted 9");
    }

    #[test]
    fn linear_align_handles_substitution_runs() {
        let left = [1u32, 2, 3, 4, 5];
        let right = [1u32, 8, 9, 4, 5];
        let a = linear_block_align(&left, &right);
        assert!(a.matches >= 3, "prefix and suffix still match: {:?}", a.entries);
    }

    #[test]
    fn linear_is_never_better_than_nw() {
        // NW is optimal; the linear heuristic is a lower bound.
        let cases: &[(&[u32], &[u32])] = &[
            (&[1, 2, 3, 4], &[4, 3, 2, 1]),
            (&[1, 1, 2, 2], &[2, 2, 1, 1]),
            (&[5, 6, 7], &[7, 5, 6]),
            (&[1, 2, 3, 1, 2, 3], &[3, 2, 1]),
        ];
        for (l, r) in cases {
            let nw = needleman_wunsch(l, r);
            let lin = linear_block_align(l, r);
            assert!(lin.matches <= nw.matches, "{l:?} vs {r:?}");
        }
    }

    #[test]
    fn empty_sequences() {
        let a = needleman_wunsch(&[], &[]);
        assert_eq!(a.ratio(), 1.0);
        let b = needleman_wunsch(&[1, 2], &[]);
        assert_eq!(b.matches, 0);
        assert_eq!(b.entries.len(), 2);
    }

    #[test]
    fn scratch_variants_match_allocating_variants_across_reuse() {
        // One scratch reused over inputs of varying sizes (including
        // shrinking ones) must produce identical results to fresh calls.
        let cases: &[(&[u32], &[u32])] = &[
            (&[1, 2, 3, 4, 5], &[1, 2, 9, 3, 4, 5]),
            (&[1, 2], &[]),
            (&[], &[]),
            (&[7, 8, 9, 1, 2, 3, 4], &[9, 1, 2, 4]),
            (&[5], &[5]),
        ];
        let mut scratch = AlignScratch::new();
        for (l, r) in cases {
            let owned_nw = needleman_wunsch(l, r);
            let view_nw = needleman_wunsch_with(&mut scratch, l, r);
            assert_eq!(view_nw.entries, owned_nw.entries.as_slice());
            assert_eq!(view_nw.matches, owned_nw.matches);
            assert_eq!(view_nw.total, owned_nw.total);
            assert_eq!(view_nw.to_owned().entries, owned_nw.entries);

            let owned_lin = linear_block_align(l, r);
            let view_lin = linear_block_align_with(&mut scratch, l, r);
            assert_eq!(view_lin.entries, owned_lin.entries.as_slice());
            assert_eq!(view_lin.matches, owned_lin.matches);
            assert!((view_lin.ratio() - owned_lin.ratio()).abs() < 1e-12);
        }
    }

    #[test]
    fn scratch_counts_cells_and_grows() {
        let mut scratch = AlignScratch::new();
        assert_eq!(scratch.stats(), AlignScratchStats::default());
        needleman_wunsch_with(&mut scratch, &[1, 2, 3], &[1, 2]);
        let s1 = scratch.stats();
        assert_eq!(s1.cells, 6, "3x2 DP cells");
        assert_eq!(s1.dp_grows, 1, "first call grows the empty buffer");
        // A smaller follow-up fits in the existing capacity.
        needleman_wunsch_with(&mut scratch, &[1], &[1]);
        assert_eq!(scratch.stats().cells, 7);
        assert_eq!(scratch.stats().dp_grows, 1, "reuse must not re-grow");
        // Linear alignment counts positions, not a DP product.
        linear_block_align_with(&mut scratch, &[1, 2], &[1, 2, 3]);
        assert_eq!(scratch.stats().cells, 12);
        scratch.reset_stats();
        assert_eq!(scratch.stats(), AlignScratchStats::default());
    }

    #[test]
    fn alignment_entries_cover_both_sequences() {
        let left = [1u32, 2, 3, 7, 8];
        let right = [2u32, 3, 4, 7];
        for a in [needleman_wunsch(&left, &right), linear_block_align(&left, &right)] {
            let mut li = 0;
            let mut rj = 0;
            for e in &a.entries {
                match e {
                    AlignEntry::Match(i, j) => {
                        assert_eq!((*i, *j), (li, rj));
                        li += 1;
                        rj += 1;
                    }
                    AlignEntry::GapRight(i) => {
                        assert_eq!(*i, li);
                        li += 1;
                    }
                    AlignEntry::GapLeft(j) => {
                        assert_eq!(*j, rj);
                        rj += 1;
                    }
                }
            }
            assert_eq!(li, left.len());
            assert_eq!(rj, right.len());
        }
    }
}
