//! The function-merging pass.
//!
//! Drives the full pipeline of Figure 1 of the paper as a staged loop:
//!
//! ```text
//! preprocess (build CandidateSearch + Committer, in parallel for jobs>1)
//! for each function: rank (best_candidates) -> align -> codegen+commit
//! ```
//!
//! Three strategies are provided, all running through the
//! [`CandidateSearch`](crate::rank::CandidateSearch) seam:
//!
//! - [`Strategy::Hyfm`] — the baseline: opcode-frequency fingerprints with
//!   an exhaustive nearest-neighbour scan (quadratic ranking),
//! - [`Strategy::F3m`] — MinHash fingerprints with LSH bucket search under
//!   explicit [`MergeParams`],
//! - [`Strategy::F3mAdaptive`] — F3M with the threshold and band count
//!   scaled to the program size (Equations 3 and 4).
//!
//! Timing is recorded per stage, split into *success* and *fail* buckets
//! exactly as in the paper's Figures 3 and 13. The merged module is
//! byte-identical for every `jobs` setting: parallelism only accelerates
//! the preprocess stage.

use std::time::Instant;

use f3m_fingerprint::adaptive::MergeParams;
use f3m_ir::ids::FuncId;
use f3m_ir::module::Module;
use f3m_ir::size::module_size;

use crate::block_pairing::plan_blocks;
use crate::codegen::MergeConfig;
use crate::commit::{fixed_overhead, Committer};
use crate::profile::Profile;
use crate::rank::{build_search, QueryCounters};

pub use crate::report::{AttemptRecord, MergeReport, MergeStats, StageTime};

/// Candidate-selection strategy.
#[derive(Clone, Debug, Default)]
pub enum Strategy {
    /// HyFM baseline: opcode-frequency fingerprints, exhaustive
    /// nearest-neighbour ranking.
    #[default]
    Hyfm,
    /// F3M with explicit parameters (the paper's *static* variant uses
    /// [`MergeParams::static_default`]).
    F3m(MergeParams),
    /// F3M with parameters derived from the number of functions.
    F3mAdaptive,
}

/// Pass configuration.
#[derive(Clone, Debug, Default)]
pub struct PassConfig {
    /// Candidate selection strategy.
    pub strategy: Strategy,
    /// Code-generation options (dominance repair mode).
    pub merge: MergeConfig,
    /// Optional execution profile: near-tied candidates are resolved
    /// toward the coldest function (the paper's Section IV-F proposal).
    pub profile: Option<Profile>,
    /// Worker threads for the preprocess stage (fingerprints, reference
    /// index). `0` and `1` both mean fully sequential; any value produces
    /// the same merged module.
    pub jobs: usize,
}

impl PassConfig {
    /// HyFM baseline configuration.
    pub fn hyfm() -> PassConfig {
        PassConfig { strategy: Strategy::Hyfm, ..Default::default() }
    }

    /// F3M static configuration (`k=200, r=2, b=100, t=0.0`).
    pub fn f3m() -> PassConfig {
        PassConfig {
            strategy: Strategy::F3m(MergeParams::static_default()),
            ..Default::default()
        }
    }

    /// F3M adaptive configuration.
    pub fn f3m_adaptive() -> PassConfig {
        PassConfig { strategy: Strategy::F3mAdaptive, ..Default::default() }
    }

    /// Attaches an execution profile for performance-aware selection.
    pub fn with_profile(mut self, profile: Profile) -> PassConfig {
        self.profile = Some(profile);
        self
    }

    /// Sets the preprocess worker-thread count.
    pub fn with_jobs(mut self, jobs: usize) -> PassConfig {
        self.jobs = jobs;
        self
    }
}

/// Runs the function-merging pass over `m`, mutating it in place
/// (committed merges replace the originals with thunks and append the
/// merged function).
pub fn run_pass(m: &mut Module, config: &PassConfig) -> MergeReport {
    let mut report = MergeReport::default();
    report.stats.size_before = module_size(m);
    let jobs = config.jobs.max(1);

    let funcs: Vec<FuncId> = m
        .defined_functions()
        .into_iter()
        .filter(|&f| m.function(f).num_linked_insts() > 0)
        .collect();
    report.stats.functions = funcs.len();

    // ---- preprocess: fingerprints + search structure + reference index --
    let t0 = Instant::now();
    let mut search = build_search(m, &funcs, &config.strategy, jobs);
    let mut committer = Committer::build(m, jobs);
    report.stats.preprocess = t0.elapsed();

    // ---- main loop: rank -> align -> codegen+commit per function --------
    let mut available = vec![true; funcs.len()];
    for i in 0..funcs.len() {
        if !available[i] {
            continue;
        }
        // Rank: the best available near-tie candidates under the strategy.
        let t_rank = Instant::now();
        let mut counters = QueryCounters::default();
        let cands_set = search.best_candidates(i, &available, &mut counters);
        report.stats.fingerprint_comparisons += counters.comparisons;
        report.stats.candidates_examined += counters.examined;
        report.stats.candidates_returned += counters.returned;
        let best = cands_set.choose(config.profile.as_ref(), |idx| funcs[idx]);
        let rank_elapsed = t_rank.elapsed();
        let Some((j, similarity)) = best else {
            report.stats.rank.fail += rank_elapsed;
            continue;
        };

        // Align.
        let (f1, f2) = (funcs[i], funcs[j]);
        let t_align = Instant::now();
        let plan = plan_blocks(m, f1, f2);
        let matched = plan.matched_insts();
        let align_elapsed = t_align.elapsed();
        report.stats.pairs_attempted += 1;
        let total_insts =
            m.function(f1).num_linked_insts() + m.function(f2).num_linked_insts();
        let align_ratio =
            if total_insts == 0 { 0.0 } else { 2.0 * matched as f64 / total_insts as f64 };
        // HyFM's alignment-profitability gate: skip code generation when
        // even an optimistic estimate (every matched instruction shared,
        // ignoring operand selects) cannot pay for the fixed costs. This
        // is where most unprofitable pairs die cheaply.
        let fixed =
            fixed_overhead(committer.droppable(m, f1), committer.droppable(m, f2));
        if matched == 0 || plan.estimated_savings(fixed) <= 0 {
            report.stats.rank.fail += rank_elapsed;
            report.stats.align.fail += align_elapsed;
            report.attempts.push(AttemptRecord {
                f1,
                f2,
                similarity,
                align_ratio,
                committed: false,
                size_delta: 0,
                time: align_elapsed,
            });
            continue;
        }

        // Codegen + profitability + commit.
        let t_cg = Instant::now();
        let outcome = committer.try_commit(m, f1, f2, &plan, config.merge);
        let cg_elapsed = t_cg.elapsed();
        match outcome {
            Some(size_delta) => {
                search.invalidate(i);
                search.invalidate(j);
                available[i] = false;
                available[j] = false;
                report.stats.merges_committed += 1;
                report.stats.rank.success += rank_elapsed;
                report.stats.align.success += align_elapsed;
                report.stats.codegen.success += cg_elapsed;
                report.attempts.push(AttemptRecord {
                    f1,
                    f2,
                    similarity,
                    align_ratio,
                    committed: true,
                    size_delta,
                    time: align_elapsed + cg_elapsed,
                });
            }
            None => {
                report.stats.rank.fail += rank_elapsed;
                report.stats.align.fail += align_elapsed;
                report.stats.codegen.fail += cg_elapsed;
                report.attempts.push(AttemptRecord {
                    f1,
                    f2,
                    similarity,
                    align_ratio,
                    committed: false,
                    size_delta: 0,
                    time: align_elapsed + cg_elapsed,
                });
            }
        }
    }

    report.stats.size_after = module_size(m);
    report
}
