//! The function-merging pass.
//!
//! Drives the full pipeline of Figure 1 of the paper: fingerprint
//! generation (*preprocess*), candidate pairing (*rank*), block-level
//! alignment (*align*), merged-function generation and profitability
//! checking (*codegen*). Three strategies are provided:
//!
//! - [`Strategy::Hyfm`] — the baseline: opcode-frequency fingerprints with
//!   an exhaustive nearest-neighbour scan (quadratic ranking),
//! - [`Strategy::F3m`] — MinHash fingerprints with LSH bucket search under
//!   explicit [`MergeParams`],
//! - [`Strategy::F3mAdaptive`] — F3M with the threshold and band count
//!   scaled to the program size (Equations 3 and 4).
//!
//! Timing is recorded per stage, split into *success* and *fail* buckets
//! exactly as in the paper's Figures 3 and 13.

use std::time::{Duration, Instant};

use f3m_fingerprint::adaptive::MergeParams;
use f3m_fingerprint::encode::encode_function;
use f3m_fingerprint::lsh::LshIndex;
use f3m_fingerprint::minhash::MinHashFingerprint;
use f3m_fingerprint::opcode_freq::OpcodeFingerprint;
use f3m_ir::ids::FuncId;
use f3m_ir::module::Module;
use f3m_ir::size::{function_size, module_size};
use f3m_ir::verify::verify_function;

use f3m_ir::function::{Function, Linkage};

use std::collections::{HashMap, HashSet};

use f3m_ir::ids::InstId;
use f3m_ir::inst::Opcode;
use f3m_ir::value::ValueKind;

use crate::block_pairing::plan_blocks;
use crate::profile::{CandidateSet, Profile};
use crate::codegen::{build_merged, build_thunk, MergeConfig};

/// Module-wide reference index, maintained incrementally across commits so
/// that call-site redirection does not rescan the whole module per merge
/// (which would reintroduce a quadratic term the paper works to remove).
struct RefIndex {
    /// callee -> call/invoke sites `(owner function, instruction, owner
    /// version at recording time)`.
    call_sites: HashMap<FuncId, Vec<(FuncId, InstId, u32)>>,
    /// Functions whose address escapes a direct-call position; these must
    /// keep a thunk.
    address_taken: HashSet<FuncId>,
    /// Version per function; bumped when a body is replaced wholesale,
    /// invalidating recorded sites inside it.
    versions: HashMap<FuncId, u32>,
}

impl RefIndex {
    fn build(m: &Module) -> RefIndex {
        let mut idx = RefIndex {
            call_sites: HashMap::new(),
            address_taken: HashSet::new(),
            versions: HashMap::new(),
        };
        for (owner, _) in m.functions() {
            idx.scan_function(m, owner);
        }
        idx
    }

    fn version(&self, f: FuncId) -> u32 {
        self.versions.get(&f).copied().unwrap_or(0)
    }

    /// Records every function reference inside `owner`'s current body.
    fn scan_function(&mut self, m: &Module, owner: FuncId) {
        let f = m.function(owner);
        if f.is_declaration {
            return;
        }
        let version = self.version(owner);
        for (iid, inst) in f.linked_insts() {
            for (slot, &op) in inst.operands.iter().enumerate() {
                if let ValueKind::FuncRef(target) = f.value(op).kind {
                    let is_callee =
                        slot == 0 && matches!(inst.op, Opcode::Call | Opcode::Invoke);
                    if is_callee {
                        self.call_sites
                            .entry(target)
                            .or_default()
                            .push((owner, iid, version));
                    } else {
                        self.address_taken.insert(target);
                    }
                }
            }
        }
    }

    /// Invalidates all recorded sites inside `owner` (its body is being
    /// replaced).
    fn invalidate_owner(&mut self, owner: FuncId) {
        *self.versions.entry(owner).or_insert(0) += 1;
    }

    /// Rewrites every live call site of `target` to call `merged` with the
    /// function identifier and remapped arguments, re-registering the
    /// rewritten sites under `merged`.
    fn redirect(
        &mut self,
        m: &mut Module,
        target: FuncId,
        merged: FuncId,
        fid_value: bool,
        param_map: &[usize],
    ) {
        let mut scratch = f3m_ir::types::TypeStore::new();
        let ptr_ty = scratch.ptr();
        let bool_ty = scratch.bool();
        let merged_params = m.function(merged).params.clone();
        let sites = self.call_sites.remove(&target).unwrap_or_default();
        let mut moved = Vec::with_capacity(sites.len());
        for (owner, iid, version) in sites {
            if version != self.version(owner) {
                continue; // stale: the owner's body was replaced
            }
            let old_args: Vec<f3m_ir::ids::ValueId> =
                m.function(owner).inst(iid).operands[1..].to_vec();
            let (f, types) = m.func_mut_and_types(owner);
            let callee = f.func_ref(merged, ptr_ty);
            let fid_const = f.const_int(types, bool_ty, i64::from(fid_value));
            let mut new_ops = vec![callee, fid_const];
            for (slot, &ty) in merged_params.iter().enumerate().skip(1) {
                match param_map.iter().position(|&s| s == slot) {
                    Some(orig_idx) => new_ops.push(old_args[orig_idx]),
                    None => {
                        let u = f.undef(ty);
                        new_ops.push(u);
                    }
                }
            }
            f.inst_mut(iid).operands = new_ops;
            moved.push((owner, iid, version));
        }
        self.call_sites.entry(merged).or_default().extend(moved);
    }
}

/// Candidate-selection strategy.
#[derive(Clone, Debug, Default)]
pub enum Strategy {
    /// HyFM baseline: opcode-frequency fingerprints, exhaustive
    /// nearest-neighbour ranking.
    #[default]
    Hyfm,
    /// F3M with explicit parameters (the paper's *static* variant uses
    /// [`MergeParams::static_default`]).
    F3m(MergeParams),
    /// F3M with parameters derived from the number of functions.
    F3mAdaptive,
}

/// Pass configuration.
#[derive(Clone, Debug, Default)]
pub struct PassConfig {
    /// Candidate selection strategy.
    pub strategy: Strategy,
    /// Code-generation options (dominance repair mode).
    pub merge: MergeConfig,
    /// Optional execution profile: near-tied candidates are resolved
    /// toward the coldest function (the paper's Section IV-F proposal).
    pub profile: Option<Profile>,
}

impl PassConfig {
    /// HyFM baseline configuration.
    pub fn hyfm() -> PassConfig {
        PassConfig { strategy: Strategy::Hyfm, ..Default::default() }
    }

    /// F3M static configuration (`k=200, r=2, b=100, t=0.0`).
    pub fn f3m() -> PassConfig {
        PassConfig {
            strategy: Strategy::F3m(MergeParams::static_default()),
            ..Default::default()
        }
    }

    /// F3M adaptive configuration.
    pub fn f3m_adaptive() -> PassConfig {
        PassConfig { strategy: Strategy::F3mAdaptive, ..Default::default() }
    }

    /// Attaches an execution profile for performance-aware selection.
    pub fn with_profile(mut self, profile: Profile) -> PassConfig {
        self.profile = Some(profile);
        self
    }
}

/// Wall-clock cost of a pipeline stage, split by eventual outcome.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTime {
    /// Time attributed to attempts that ended in a committed merge.
    pub success: Duration,
    /// Time attributed to attempts that did not.
    pub fail: Duration,
}

impl StageTime {
    /// Total time in the stage.
    pub fn total(&self) -> Duration {
        self.success + self.fail
    }
}

/// Aggregate statistics of one pass run.
#[derive(Clone, Debug, Default)]
pub struct MergeStats {
    /// Function definitions considered.
    pub functions: usize,
    /// Candidate pairs for which alignment was attempted.
    pub pairs_attempted: usize,
    /// Merges committed (pairs replaced by thunks + merged function).
    pub merges_committed: usize,
    /// Fingerprint construction time.
    pub preprocess: Duration,
    /// Candidate search time.
    pub rank: StageTime,
    /// Block pairing / alignment time.
    pub align: StageTime,
    /// Merged-function generation, verification and profitability time.
    pub codegen: StageTime,
    /// Number of fingerprint-to-fingerprint similarity computations.
    pub fingerprint_comparisons: u64,
    /// Estimated module text size before the pass.
    pub size_before: u64,
    /// Estimated module text size after the pass.
    pub size_after: u64,
}

impl MergeStats {
    /// Total time spent in the merging pass.
    pub fn total_time(&self) -> Duration {
        self.preprocess + self.rank.total() + self.align.total() + self.codegen.total()
    }

    /// Code-size reduction as a fraction of the original size
    /// (positive = smaller module).
    pub fn size_reduction(&self) -> f64 {
        if self.size_before == 0 {
            return 0.0;
        }
        1.0 - self.size_after as f64 / self.size_before as f64
    }
}

/// One ranked candidate pair and what happened to it.
#[derive(Clone, Debug)]
pub struct AttemptRecord {
    /// The candidate function.
    pub f1: FuncId,
    /// Its selected nearest neighbour.
    pub f2: FuncId,
    /// Fingerprint similarity under the active strategy's metric
    /// (normalized opcode similarity for HyFM, estimated Jaccard for F3M).
    pub similarity: f64,
    /// Fraction of instructions matched by the block-level alignment.
    pub align_ratio: f64,
    /// Whether the merge was size-profitable and committed.
    pub committed: bool,
    /// `size_before - size_after` for this pair (positive = savings);
    /// meaningful only when committed.
    pub size_delta: i64,
    /// Wall-clock spent on this pair after ranking (align + codegen).
    pub time: Duration,
}

/// Full report of a pass run.
#[derive(Clone, Debug, Default)]
pub struct MergeReport {
    /// Aggregate statistics.
    pub stats: MergeStats,
    /// Per-pair attempt log, in processing order.
    pub attempts: Vec<AttemptRecord>,
}

/// Runs the function-merging pass over `m`, mutating it in place
/// (committed merges replace the originals with thunks and append the
/// merged function).
pub fn run_pass(m: &mut Module, config: &PassConfig) -> MergeReport {
    let mut report = MergeReport::default();
    report.stats.size_before = module_size(m);

    let funcs: Vec<FuncId> = m
        .defined_functions()
        .into_iter()
        .filter(|&f| m.function(f).num_linked_insts() > 0)
        .collect();
    report.stats.functions = funcs.len();

    let params = match &config.strategy {
        Strategy::Hyfm => None,
        Strategy::F3m(p) => Some(*p),
        Strategy::F3mAdaptive => Some(MergeParams::adaptive(funcs.len())),
    };

    // ---- preprocess: fingerprints ------------------------------------
    let t0 = Instant::now();
    let mut opcode_fps: Vec<OpcodeFingerprint> = Vec::new();
    let mut minhash_fps: Vec<MinHashFingerprint> = Vec::new();
    let mut lsh: Option<LshIndex<usize>> = None;
    match &params {
        None => {
            opcode_fps = funcs.iter().map(|&f| OpcodeFingerprint::of(m.function(f))).collect();
        }
        Some(p) => {
            minhash_fps = funcs
                .iter()
                .map(|&f| {
                    let enc = encode_function(&m.types, m.function(f));
                    MinHashFingerprint::of_encoded(&enc, p.k)
                })
                .collect();
            let mut index = LshIndex::new(p.lsh);
            for (i, fp) in minhash_fps.iter().enumerate() {
                index.insert(i, fp);
            }
            lsh = Some(index);
        }
    }
    report.stats.preprocess = t0.elapsed();

    // Module-wide reference index for call-site redirection.
    let mut refs = RefIndex::build(m);

    // ---- main loop ------------------------------------------------------
    let mut available = vec![true; funcs.len()];
    for i in 0..funcs.len() {
        if !available[i] {
            continue;
        }
        // Rank: find the nearest available candidate.
        let t_rank = Instant::now();
        // Near-tie tolerance for profile-guided selection (no effect
        // without a profile: the plain maximum is chosen).
        let mut cands_set = CandidateSet::new(0.05);
        match &params {
            None => {
                for (j, av) in available.iter().enumerate() {
                    if !*av || j == i {
                        continue;
                    }
                    report.stats.fingerprint_comparisons += 1;
                    let sim = opcode_fps[i].similarity(&opcode_fps[j]);
                    cands_set.push(j, sim);
                }
            }
            Some(p) => {
                let index = lsh.as_ref().expect("lsh built");
                let (cands, _examined) = index.candidates(&minhash_fps[i], i);
                // One Jaccard computation per distinct candidate — the
                // quantity the paper's bucket cap bounds.
                report.stats.fingerprint_comparisons += cands.len() as u64;
                for j in cands {
                    if !available[j] {
                        continue;
                    }
                    let sim = minhash_fps[i].similarity(&minhash_fps[j]);
                    if sim < p.threshold {
                        continue;
                    }
                    cands_set.push(j, sim);
                }
            }
        }
        let best: Option<(usize, f64)> =
            cands_set.choose(config.profile.as_ref(), |idx| funcs[idx]);
        let rank_elapsed = t_rank.elapsed();
        let Some((j, similarity)) = best else {
            report.stats.rank.fail += rank_elapsed;
            continue;
        };

        // Align.
        let (f1, f2) = (funcs[i], funcs[j]);
        let t_align = Instant::now();
        let plan = plan_blocks(m, f1, f2);
        let matched = plan.matched_insts();
        let align_elapsed = t_align.elapsed();
        report.stats.pairs_attempted += 1;
        let total_insts =
            m.function(f1).num_linked_insts() + m.function(f2).num_linked_insts();
        let align_ratio =
            if total_insts == 0 { 0.0 } else { 2.0 * matched as f64 / total_insts as f64 };
        // HyFM's alignment-profitability gate: skip code generation when
        // even an optimistic estimate (every matched instruction shared,
        // ignoring operand selects) cannot pay for the fixed costs. This
        // is where most unprofitable pairs die cheaply.
        let drop1 = m.function(f1).linkage == Linkage::Internal
            && !refs.address_taken.contains(&f1);
        let drop2 = m.function(f2).linkage == Linkage::Internal
            && !refs.address_taken.contains(&f2);
        let thunk_cost = |dropped: bool| if dropped { 0i64 } else { 18 };
        // Merged-function overhead + entry dispatch + thunks, minus the two
        // eliminated original-function overheads.
        let fixed = 14 + thunk_cost(drop1) + thunk_cost(drop2) - 24;
        if matched == 0 || plan.estimated_savings(fixed) <= 0 {
            report.stats.rank.fail += rank_elapsed;
            report.stats.align.fail += align_elapsed;
            report.attempts.push(AttemptRecord {
                f1,
                f2,
                similarity,
                align_ratio,
                committed: false,
                size_delta: 0,
                time: align_elapsed,
            });
            continue;
        }

        // Codegen + profitability.
        let t_cg = Instant::now();
        let name = m.fresh_name("__merged");
        let committed = match build_merged(m, f1, f2, &plan, config.merge, name) {
            Err(_) => false,
            Ok(mf) => {
                let size_before = function_size(m.function(f1)) + function_size(m.function(f2));
                let merged_size = function_size(&mf.func);
                let merged_id = m.add_function(mf.func);
                if verify_function(m, merged_id).is_err() {
                    // A verifier failure here is a code generator bug; drop
                    // the candidate rather than corrupt the module.
                    m.remove_last_function(merged_id);
                    false
                } else {
                    // A function whose address is never taken has all its
                    // call sites redirected into the merged body; if it is
                    // also module-private, the original symbol disappears
                    // entirely. Otherwise a thunk preserves the symbol.
                    let thunk1 = build_thunk(m, f1, merged_id, false, &mf.param_map1);
                    let thunk2 = build_thunk(m, f2, merged_id, true, &mf.param_map2);
                    let after1 = if drop1 { 0 } else { function_size(&thunk1) };
                    let after2 = if drop2 { 0 } else { function_size(&thunk2) };
                    let size_after = merged_size + after1 + after2;
                    if size_after < size_before {
                        // Register the merged body's own call sites first so
                        // recursive references to f1/f2 get redirected too.
                        refs.scan_function(m, merged_id);
                        refs.redirect(m, f1, merged_id, false, &mf.param_map1);
                        refs.redirect(m, f2, merged_id, true, &mf.param_map2);
                        refs.invalidate_owner(f1);
                        refs.invalidate_owner(f2);
                        if drop1 {
                            let old = m.function(f1);
                            m.replace_function(
                                f1,
                                Function::new_declaration(
                                    old.name.clone(),
                                    old.params.clone(),
                                    old.ret_ty,
                                ),
                            );
                        } else {
                            m.replace_function(f1, thunk1);
                        }
                        if drop2 {
                            let old = m.function(f2);
                            m.replace_function(
                                f2,
                                Function::new_declaration(
                                    old.name.clone(),
                                    old.params.clone(),
                                    old.ret_ty,
                                ),
                            );
                        } else {
                            m.replace_function(f2, thunk2);
                        }
                        // Thunk bodies call the merged function; register
                        // those new sites under the bumped versions.
                        refs.scan_function(m, f1);
                        refs.scan_function(m, f2);
                        if let (Some(p), Some(index)) = (&params, lsh.as_mut()) {
                            let _ = p;
                            index.remove(i, &minhash_fps[i]);
                            index.remove(j, &minhash_fps[j]);
                        }
                        available[i] = false;
                        available[j] = false;
                        report.stats.merges_committed += 1;
                        report.attempts.push(AttemptRecord {
                            f1,
                            f2,
                            similarity,
                            align_ratio,
                            committed: true,
                            size_delta: size_before as i64 - size_after as i64,
                            time: align_elapsed + t_cg.elapsed(),
                        });
                        true
                    } else {
                        m.remove_last_function(merged_id);
                        false
                    }
                }
            }
        };
        let cg_elapsed = t_cg.elapsed();
        if committed {
            report.stats.rank.success += rank_elapsed;
            report.stats.align.success += align_elapsed;
            report.stats.codegen.success += cg_elapsed;
        } else {
            report.stats.rank.fail += rank_elapsed;
            report.stats.align.fail += align_elapsed;
            report.stats.codegen.fail += cg_elapsed;
            report.attempts.push(AttemptRecord {
                f1,
                f2,
                similarity,
                align_ratio,
                committed: false,
                size_delta: 0,
                time: align_elapsed + cg_elapsed,
            });
        }
    }

    report.stats.size_after = module_size(m);
    report
}
