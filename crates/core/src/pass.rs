//! The function-merging pass.
//!
//! Drives the full pipeline of Figure 1 of the paper as a wave-based loop:
//!
//! ```text
//! preprocess (CandidateSearch + Committer + BlockPartsCache, parallel)
//! loop (wave):
//!   rank + align every still-available function   (parallel, speculative)
//!   walk the wave in fixed index order, committing serially
//! ```
//!
//! Each wave snapshots the availability mask, then ranks every remaining
//! function and aligns its chosen pair speculatively on the worker pool
//! (`--jobs`). The serial walk then revisits the wave in index order: a
//! pair whose member was consumed by an earlier commit in the same wave is
//! discarded (the function itself was merged away) or deferred to the next
//! wave for re-ranking (only its partner was taken). All module mutation
//! and all counter accumulation happen in the walk, so the merged module
//! and every [`MergeReport`] counter are **byte-identical for every
//! `jobs` value** — parallelism changes wall-clock time only.
//!
//! Three strategies are provided, all running through the
//! [`CandidateSearch`](crate::rank::CandidateSearch) seam:
//!
//! - [`Strategy::Hyfm`] — the baseline: opcode-frequency fingerprints with
//!   an exhaustive nearest-neighbour scan (quadratic ranking),
//! - [`Strategy::F3m`] — MinHash fingerprints with LSH bucket search under
//!   explicit [`MergeParams`],
//! - [`Strategy::F3mAdaptive`] — F3M with the threshold and band count
//!   scaled to the program size (Equations 3 and 4).
//!
//! Timing is recorded per stage, split into *success* and *fail* buckets
//! exactly as in the paper's Figures 3 and 13 (stage times sum per-pair
//! durations, so they exceed wall-clock when waves run wide).

use std::time::{Duration, Instant};

use f3m_fingerprint::adaptive::MergeParams;
use f3m_fingerprint::par::par_map_indexed_with;
use f3m_ir::ids::FuncId;
use f3m_ir::module::Module;
use f3m_ir::size::module_size;
use f3m_trace::{span_on, Tracer};

use crate::align::AlignScratch;
use crate::block_pairing::{function_parts, plan_blocks_with, BlockPartsCache, PairPlan};
use crate::codegen::MergeConfig;
use crate::commit::{fixed_overhead, Committer};
use crate::profile::Profile;
use crate::rank::{build_search, CandidateSearch, QueryCounters, SearchScratch};

pub use crate::report::{AttemptRecord, MergeReport, MergeStats, StageTime};

/// Candidate-selection strategy.
#[derive(Clone, Debug, Default)]
pub enum Strategy {
    /// HyFM baseline: opcode-frequency fingerprints, exhaustive
    /// nearest-neighbour ranking.
    #[default]
    Hyfm,
    /// F3M with explicit parameters (the paper's *static* variant uses
    /// [`MergeParams::static_default`]).
    F3m(MergeParams),
    /// F3M with parameters derived from the number of functions.
    F3mAdaptive,
}

/// Pass configuration.
#[derive(Clone, Debug, Default)]
pub struct PassConfig {
    /// Candidate selection strategy.
    pub strategy: Strategy,
    /// Code-generation options (dominance repair mode).
    pub merge: MergeConfig,
    /// Optional execution profile: near-tied candidates are resolved
    /// toward the coldest function (the paper's Section IV-F proposal).
    pub profile: Option<Profile>,
    /// Worker threads for the preprocess stage *and* the wave loop's
    /// speculative rank/align phase. `0` and `1` both mean fully
    /// sequential; any value produces the same merged module.
    pub jobs: usize,
    /// Wrap the candidate search in a [`MemoizedSearch`] so repeated
    /// `ranked_candidates` queries answer from a per-function memo.
    /// Off by default: the offline pass ranks each function once, so the
    /// memo only pays off for callers that re-query (corpus serving,
    /// analysis tools).
    ///
    /// [`MemoizedSearch`]: crate::rank::MemoizedSearch
    pub memoize_rank: bool,
}

impl PassConfig {
    /// HyFM baseline configuration.
    pub fn hyfm() -> PassConfig {
        PassConfig { strategy: Strategy::Hyfm, ..Default::default() }
    }

    /// F3M static configuration (`k=200, r=2, b=100, t=0.0`).
    pub fn f3m() -> PassConfig {
        PassConfig {
            strategy: Strategy::F3m(MergeParams::static_default()),
            ..Default::default()
        }
    }

    /// F3M adaptive configuration.
    pub fn f3m_adaptive() -> PassConfig {
        PassConfig { strategy: Strategy::F3mAdaptive, ..Default::default() }
    }

    /// Attaches an execution profile for performance-aware selection.
    pub fn with_profile(mut self, profile: Profile) -> PassConfig {
        self.profile = Some(profile);
        self
    }

    /// Sets the preprocess worker-thread count.
    pub fn with_jobs(mut self, jobs: usize) -> PassConfig {
        self.jobs = jobs;
        self
    }

    /// Enables the ranked-candidates memo layer (see
    /// [`PassConfig::memoize_rank`]).
    pub fn with_memoized_rank(mut self) -> PassConfig {
        self.memoize_rank = true;
        self
    }
}

/// One wave member's speculative result, produced on the worker pool and
/// consumed by the serial commit walk.
struct WaveOutcome {
    /// Ranking counters for this query.
    counters: QueryCounters,
    /// Wall-clock of the rank query.
    rank_time: Duration,
    /// The chosen candidate `(index, similarity)`, if any.
    best: Option<(usize, f64)>,
    /// The speculative alignment plan and its matched-instruction count.
    plan: Option<(PairPlan, usize)>,
    /// Wall-clock of the speculative alignment.
    align_time: Duration,
    /// Cache slots that had to be re-encoded (0, 1 or 2).
    cache_misses: u32,
    /// Alignment work (DP cells + linear positions) for this member. A
    /// per-pair quantity, so summing it stays job-count independent.
    align_cells: u64,
    /// Scratch-buffer growths while aligning this member. Depends on what
    /// the worker's scratch processed before, so jobs-DEPENDENT: exported
    /// to the tracer only, never into [`MergeStats`].
    scratch_grows: u64,
}

/// Runs the function-merging pass over `m`, mutating it in place
/// (committed merges replace the originals with thunks and append the
/// merged function).
pub fn run_pass(m: &mut Module, config: &PassConfig) -> MergeReport {
    run_pass_traced(m, config, None)
}

/// [`run_pass`] with optional structured tracing. With `Some(tracer)`,
/// spans cover every stage seam (fingerprint/index build, per-pair rank
/// and align, each commit, the serial walk) and one cumulative
/// `wave_counters` sample is emitted per wave. With `None` every
/// instrumentation point is skipped — the untraced path does no extra
/// work beyond the counters [`MergeStats`] always carried.
///
/// Track layout: track 0 is the serial driver (preprocess, commit walk,
/// commits); track 1 replays the speculative per-pair rank/align
/// durations end-to-end in commit-walk order, since the real executions
/// overlap on a worker pool and have no stable wall-clock placement.
pub fn run_pass_traced(
    m: &mut Module,
    config: &PassConfig,
    tracer: Option<&Tracer>,
) -> MergeReport {
    let mut report = MergeReport::default();
    report.stats.size_before = module_size(m);
    let jobs = config.jobs.max(1);

    let funcs: Vec<FuncId> = m
        .defined_functions()
        .into_iter()
        .filter(|&f| m.function(f).num_linked_insts() > 0)
        .collect();
    let n = funcs.len();
    report.stats.functions = n;

    // ---- preprocess: fingerprints + search structure + reference index
    // ---- + encoded block parts, all fanned out across `jobs` threads ---
    let t0 = Instant::now();
    let mut pre_span = span_on(tracer, "pass", "preprocess");
    pre_span.arg("functions", n as u64);
    let mut search = {
        let mut s = span_on(tracer, "preprocess", "fingerprint");
        s.arg("functions", n as u64);
        let search = build_search(m, &funcs, &config.strategy, jobs);
        let search: Box<dyn CandidateSearch + Send + Sync> = if config.memoize_rank {
            Box::new(crate::rank::MemoizedSearch::wrap(search))
        } else {
            search
        };
        let idx = search.index_stats();
        s.arg("lsh_buckets", idx.buckets as u64);
        s.arg("lsh_max_bucket", idx.max_bucket as u64);
        report.stats.lsh_buckets = idx.buckets as u64;
        report.stats.lsh_max_bucket = idx.max_bucket as u64;
        report.stats.soa_bytes_per_fn = idx.bytes_per_fn as u64;
        report.lsh_bucket_sizes = idx.bucket_sizes;
        search
    };
    let mut committer = {
        let _s = span_on(tracer, "preprocess", "ref_index");
        Committer::build(m, jobs)
    };
    let mut parts_cache = {
        let _s = span_on(tracer, "preprocess", "block_parts");
        BlockPartsCache::build(m, &funcs, jobs)
    };
    pre_span.finish();
    report.stats.preprocess = t0.elapsed();

    // ---- wave loop: speculative parallel rank+align, serial commit ------
    // `available[i]`: not yet consumed by a merge. `processed[i]`: the
    // walk reached a final verdict for i (committed, failed, or candidate-
    // less); deferred conflicts keep `processed` false and re-enter the
    // next wave.
    let mut available = vec![true; n];
    let mut processed = vec![false; n];
    // droppable() answers, memoized per function until a commit (epoch
    // bump) can change them.
    let mut droppable_memo: Vec<Option<bool>> = vec![None; n];
    let mut memo_epoch = committer.epoch();

    loop {
        let members: Vec<usize> =
            (0..n).filter(|&i| available[i] && !processed[i]).collect();
        if members.is_empty() {
            break;
        }
        report.stats.waves += 1;
        let mut wave_span = span_on(tracer, "pass", format!("wave {}", report.stats.waves));
        wave_span.arg("members", members.len() as u64);

        // Speculative phase: rank every member against the wave-entry
        // snapshot of `available`, then align its chosen pair, in index
        // order across the worker pool. Everything here is read-only on
        // the module and the search structure; each worker owns one
        // reusable alignment scratch.
        let m_ro: &Module = m;
        let search_ro = &*search;
        let members_ro = &members;
        let available_ro = &available;
        let parts_ro = &parts_cache;
        let funcs_ro = &funcs;
        let mut spec_span = span_on(tracer, "pass", "speculate");
        let outcomes: Vec<WaveOutcome> = par_map_indexed_with(
            members.len(),
            jobs,
            || (AlignScratch::new(), SearchScratch::new()),
            |(scratch, search_scratch), mi| {
                let i = members_ro[mi];
                let t_rank = Instant::now();
                let mut counters = QueryCounters::default();
                let set =
                    search_ro.best_candidates(i, available_ro, &mut counters, search_scratch);
                let best = set.choose(config.profile.as_ref(), |idx| funcs_ro[idx]);
                let rank_time = t_rank.elapsed();
                let stats_before = scratch.stats();
                let (plan, align_time, cache_misses) = match best {
                    Some((j, _)) => {
                        let t_align = Instant::now();
                        let mut misses = 0u32;
                        let rebuilt1;
                        let parts1 = match parts_ro.get(i) {
                            Some(p) => p,
                            None => {
                                misses += 1;
                                rebuilt1 = function_parts(m_ro.function(funcs_ro[i]));
                                &rebuilt1
                            }
                        };
                        let rebuilt2;
                        let parts2 = match parts_ro.get(j) {
                            Some(p) => p,
                            None => {
                                misses += 1;
                                rebuilt2 = function_parts(m_ro.function(funcs_ro[j]));
                                &rebuilt2
                            }
                        };
                        let plan = plan_blocks_with(
                            m_ro,
                            funcs_ro[i],
                            funcs_ro[j],
                            parts1,
                            parts2,
                            scratch,
                        );
                        let matched = plan.matched_insts();
                        (Some((plan, matched)), t_align.elapsed(), misses)
                    }
                    None => (None, Duration::ZERO, 0),
                };
                let delta = scratch.stats();
                WaveOutcome {
                    counters,
                    rank_time,
                    best,
                    plan,
                    align_time,
                    cache_misses,
                    align_cells: delta.cells - stats_before.cells,
                    scratch_grows: delta.dp_grows - stats_before.dp_grows,
                }
            });
        spec_span.arg("members", members.len() as u64);
        spec_span.arg(
            "scratch_grows",
            outcomes.iter().map(|o| o.scratch_grows).sum(),
        );
        spec_span.finish();

        // Replay the speculative per-pair durations end-to-end on track 1
        // (they ran concurrently; see the function docs for the layout).
        let mut lane_cursor = tracer.map(|t| t.now_ns()).unwrap_or(0);
        let mut walk_span = span_on(tracer, "pass", "commit_walk");
        walk_span.arg("members", members.len() as u64);

        // Serial commit walk in fixed index order: the only place that
        // mutates the module, the masks, or the report — identical for
        // every job count.
        for (mi, out) in outcomes.into_iter().enumerate() {
            let i = members[mi];
            report.stats.fingerprint_comparisons += out.counters.comparisons;
            report.stats.candidates_examined += out.counters.examined;
            report.stats.candidates_returned += out.counters.returned;
            report.stats.bucket_evictions += out.counters.evicted;
            report.stats.probe_collisions += out.counters.collisions;
            report.stats.lsh_allocs_saved += out.counters.saved_allocs;
            report.stats.align_cells += out.align_cells;
            if let Some(t) = tracer {
                let rank_ns = out.rank_time.as_nanos() as u64;
                t.complete(
                    "rank",
                    "rank",
                    1,
                    lane_cursor,
                    rank_ns,
                    vec![
                        ("member", i as u64),
                        ("examined", out.counters.examined),
                        ("returned", out.counters.returned),
                        ("evicted", out.counters.evicted),
                    ],
                );
                lane_cursor += rank_ns;
                if out.plan.is_some() {
                    let align_ns = out.align_time.as_nanos() as u64;
                    t.complete(
                        "align",
                        "align",
                        1,
                        lane_cursor,
                        align_ns,
                        vec![("member", i as u64), ("cells", out.align_cells)],
                    );
                    lane_cursor += align_ns;
                }
            }

            let Some((j, similarity)) = out.best else {
                report.stats.rank.fail += out.rank_time;
                processed[i] = true;
                continue;
            };
            report.stats.aligns_speculative += 1;
            report.stats.block_parts_cache_misses += u64::from(out.cache_misses);
            report.stats.block_parts_cache_hits += u64::from(2 - out.cache_misses);

            if !available[i] {
                // An earlier commit in this wave consumed i as a partner;
                // its speculative work is wasted and i is done for good.
                report.stats.aligns_wasted += 1;
                report.stats.rank.fail += out.rank_time;
                report.stats.align.fail += out.align_time;
                processed[i] = true;
                continue;
            }
            if !available[j] {
                // Only the partner was consumed: defer i to the next wave,
                // where it is re-ranked against the updated availability.
                report.stats.aligns_wasted += 1;
                report.stats.wave_conflicts += 1;
                report.stats.rank.fail += out.rank_time;
                report.stats.align.fail += out.align_time;
                continue;
            }
            report.stats.aligns_reused += 1;

            let (plan, matched) = out.plan.expect("aligned pair has a plan");
            let (f1, f2) = (funcs[i], funcs[j]);
            report.stats.pairs_attempted += 1;
            let total_insts =
                m.function(f1).num_linked_insts() + m.function(f2).num_linked_insts();
            let align_ratio =
                if total_insts == 0 { 0.0 } else { 2.0 * matched as f64 / total_insts as f64 };
            // HyFM's alignment-profitability gate: skip code generation when
            // even an optimistic estimate (every matched instruction shared,
            // ignoring operand selects) cannot pay for the fixed costs. This
            // is where most unprofitable pairs die cheaply.
            if committer.epoch() != memo_epoch {
                droppable_memo.fill(None);
                memo_epoch = committer.epoch();
            }
            let drop1 =
                *droppable_memo[i].get_or_insert_with(|| committer.droppable(m, f1));
            let drop2 =
                *droppable_memo[j].get_or_insert_with(|| committer.droppable(m, f2));
            let fixed = fixed_overhead(drop1, drop2);
            if matched == 0 || plan.estimated_savings(fixed) <= 0 {
                report.stats.rank.fail += out.rank_time;
                report.stats.align.fail += out.align_time;
                report.attempts.push(AttemptRecord {
                    f1,
                    f2,
                    similarity,
                    align_ratio,
                    committed: false,
                    size_delta: 0,
                    time: out.align_time,
                });
                processed[i] = true;
                continue;
            }

            // Codegen + profitability + commit.
            let t_cg = Instant::now();
            let mut commit_span = span_on(tracer, "commit", "commit");
            commit_span.arg("f1", f1.index() as u64);
            commit_span.arg("f2", f2.index() as u64);
            let outcome = committer.try_commit(m, f1, f2, &plan, config.merge);
            commit_span.arg("committed", u64::from(outcome.is_some()));
            commit_span.finish();
            let cg_elapsed = t_cg.elapsed();
            processed[i] = true;
            match outcome {
                Some(size_delta) => {
                    search.invalidate(i);
                    search.invalidate(j);
                    parts_cache.invalidate(i);
                    parts_cache.invalidate(j);
                    available[i] = false;
                    available[j] = false;
                    report.stats.merges_committed += 1;
                    report.stats.rank.success += out.rank_time;
                    report.stats.align.success += out.align_time;
                    report.stats.codegen.success += cg_elapsed;
                    report.attempts.push(AttemptRecord {
                        f1,
                        f2,
                        similarity,
                        align_ratio,
                        committed: true,
                        size_delta,
                        time: out.align_time + cg_elapsed,
                    });
                }
                None => {
                    report.stats.rank.fail += out.rank_time;
                    report.stats.align.fail += out.align_time;
                    report.stats.codegen.fail += cg_elapsed;
                    report.attempts.push(AttemptRecord {
                        f1,
                        f2,
                        similarity,
                        align_ratio,
                        committed: false,
                        size_delta: 0,
                        time: out.align_time + cg_elapsed,
                    });
                }
            }
        }
        walk_span.finish();
        if let Some(t) = tracer {
            // Cumulative samples: each series is monotone non-decreasing
            // across waves (asserted by the observability tests).
            t.counter(
                "pass",
                "wave_counters",
                vec![
                    ("merges_committed", report.stats.merges_committed as u64),
                    ("aligns_speculative", report.stats.aligns_speculative),
                    ("aligns_wasted", report.stats.aligns_wasted),
                    ("wave_conflicts", report.stats.wave_conflicts),
                    ("cache_hits", report.stats.block_parts_cache_hits),
                    ("cache_misses", report.stats.block_parts_cache_misses),
                ],
            );
        }
        wave_span.finish();
    }

    let rejects = committer.rejects();
    report.stats.commits_rejected_build = rejects.build;
    report.stats.commits_rejected_verify = rejects.verify;
    report.stats.commits_rejected_size = rejects.size;
    report.stats.size_after = module_size(m);
    report
}
