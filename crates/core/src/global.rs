//! Cross-module global merging: the optimistic two-phase engine over the
//! resident corpus.
//!
//! Per-module merging (the classic pass) can only deduplicate functions
//! that happen to live in the same translation unit. At fleet scale the
//! big wins sit *across* modules — N build targets each carrying their
//! own copy of the same helper — which is exactly the shape the corpus's
//! sharded LSH index already sees globally. Following the optimistic
//! global function merging recipe, [`GlobalMergePlanner`] runs two
//! phases:
//!
//! 1. **Optimistic phase** — draw candidate pairs from the corpus-global
//!    index ([`Corpus::global_candidates`]), speculatively align every
//!    pair in parallel against the pristine combined module, then commit
//!    greedily in pair-priority order through the same
//!    [`Committer`] seam the per-module pass uses. Everything the pass
//!    guarantees (serial commit walk, jobs-count byte-identity) carries
//!    over.
//! 2. **Verification phase** — re-check every speculative merge
//!    globally: a profitability floor over all referencing modules (the
//!    committed saving already prices call-site rewrites and thunk
//!    retention corpus-wide), the module verifier, a print→parse
//!    fixpoint, and an interpreter differential probing each merge's
//!    thunks and direct callers against the pristine corpus. Losers are
//!    **rolled back by transactional replay**: they join an excluded-pair
//!    set and the optimistic phase re-runs from a pristine combined
//!    module, so an undone merge leaves no ghost state — the final
//!    corpus is byte-identical to a run that excluded the losers up
//!    front. The excluded set grows monotonically, so the replay loop
//!    terminates.
//!
//! All [`GlobalStats`] counters are deterministic (no wall clock), so
//! [`GlobalMergeReport::to_json`] doubles as the determinism key for the
//! daemon's `global_merge` verb and the regression gate.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use f3m_fingerprint::par::par_map_indexed_with;
use f3m_interp::oracle::observe;
use f3m_interp::{Limits, Val};
use f3m_ir::ids::FuncId;
use f3m_ir::inst::Opcode;
use f3m_ir::module::Module;
use f3m_ir::size::module_size;
use f3m_ir::types::TypeKind;
use f3m_ir::value::ValueKind;
use f3m_trace::MetricsRegistry;

use crate::align::AlignScratch;
use crate::block_pairing::{plan_blocks_with, BlockPartsCache, PairPlan};
use crate::codegen::MergeConfig;
use crate::commit::{fixed_overhead, Committer};
use crate::corpus::{Corpus, GlobalPair};
use crate::report::json_f64;

/// Deterministic integer salts for the differential probes. Each probe
/// calls an entry point with per-parameter values derived from one salt,
/// in both the pristine and the merged corpus, and compares the folded
/// [`Observation`](f3m_interp::oracle::Observation)s.
const PROBE_SALTS: [i64; 3] = [0, 7, -9];

/// Configuration of a [`GlobalMergePlanner`] run.
#[derive(Clone, Debug)]
pub struct GlobalPlanConfig {
    /// Code-generation options forwarded to the committer.
    pub merge: MergeConfig,
    /// Worker threads for the speculative alignment fan-out. Any value
    /// produces the same merged module and report.
    pub jobs: usize,
    /// Candidates drawn per resident function from the global index.
    pub k: usize,
    /// Verification-phase profitability floor: a surviving merge must
    /// save at least this many bytes across all referencing modules.
    pub min_profit: i64,
    /// Execution limits for the differential probes.
    pub limits: Limits,
    /// Replay-round safety bound (the excluded set grows every round, so
    /// the loop converges long before this in practice).
    pub max_rounds: usize,
    /// Pairs (qualified names, either order) excluded before the first
    /// optimistic round — the rollback-soundness test replays a run with
    /// its losers pre-excluded through this.
    pub excluded: Vec<(String, String)>,
}

impl Default for GlobalPlanConfig {
    fn default() -> GlobalPlanConfig {
        GlobalPlanConfig {
            merge: MergeConfig::default(),
            jobs: 1,
            k: 4,
            min_profit: 1,
            limits: Limits::default(),
            max_rounds: 16,
            excluded: Vec::new(),
        }
    }
}

impl GlobalPlanConfig {
    /// Sets the speculative-phase worker-thread count.
    pub fn with_jobs(mut self, jobs: usize) -> GlobalPlanConfig {
        self.jobs = jobs;
        self
    }
}

/// Deterministic counters of one global merge. Every field is a pure
/// function of the resident corpus and the [`GlobalPlanConfig`] — no
/// wall clock, no job-count dependence — so the rendered JSON is the
/// determinism key.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GlobalStats {
    /// Live resident functions when candidates were drawn.
    pub functions: u64,
    /// Live resident modules.
    pub modules: u64,
    /// Candidate pairs drawn from the global index (after symmetric
    /// dedup, before exclusion).
    pub pairs_considered: u64,
    /// Candidate pairs whose endpoints live in different modules.
    pub cross_module_pairs: u64,
    /// Merges committed by the *first* optimistic round — before any
    /// verification verdicts.
    pub optimistic_merges: u64,
    /// Merges surviving the final verification round.
    pub verified_merges: u64,
    /// Optimistic merges rolled back across all replay rounds.
    pub rolled_back: u64,
    /// Optimistic+verification rounds executed (1 = no rollback).
    pub rounds: u64,
    /// Differential probe comparisons performed.
    pub differential_probes: u64,
    /// Probes skipped because either side hit a resource limit.
    pub differential_skips: u64,
    /// Bytes saved by the surviving merges, summed corpus-wide.
    pub global_profit_bytes: u64,
    /// Combined-module size before any merging.
    pub size_before: u64,
    /// Combined-module size after the surviving merges.
    pub size_after: u64,
}

/// Exact top-level key set (and order) of [`GlobalStats::to_json`]. The
/// regression gate and the CI smoke greps consume these names; adding a
/// counter means extending this list and the exact-key-set test together.
pub const GLOBAL_STATS_JSON_KEYS: &[&str] = &[
    "functions",
    "modules",
    "pairs_considered",
    "cross_module_pairs",
    "optimistic_merges",
    "verified_merges",
    "rolled_back",
    "rounds",
    "differential_probes",
    "differential_skips",
    "global_profit_bytes",
    "size_before",
    "size_after",
    "size_reduction",
];

impl GlobalStats {
    /// Fraction of the combined size removed by the surviving merges.
    pub fn size_reduction(&self) -> f64 {
        if self.size_before == 0 {
            0.0
        } else {
            1.0 - self.size_after as f64 / self.size_before as f64
        }
    }

    /// Renders the stats as a JSON object with exactly
    /// [`GLOBAL_STATS_JSON_KEYS`] in order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        out.push_str(&format!("\"functions\":{},", self.functions));
        out.push_str(&format!("\"modules\":{},", self.modules));
        out.push_str(&format!("\"pairs_considered\":{},", self.pairs_considered));
        out.push_str(&format!("\"cross_module_pairs\":{},", self.cross_module_pairs));
        out.push_str(&format!("\"optimistic_merges\":{},", self.optimistic_merges));
        out.push_str(&format!("\"verified_merges\":{},", self.verified_merges));
        out.push_str(&format!("\"rolled_back\":{},", self.rolled_back));
        out.push_str(&format!("\"rounds\":{},", self.rounds));
        out.push_str(&format!("\"differential_probes\":{},", self.differential_probes));
        out.push_str(&format!("\"differential_skips\":{},", self.differential_skips));
        out.push_str(&format!("\"global_profit_bytes\":{},", self.global_profit_bytes));
        out.push_str(&format!("\"size_before\":{},", self.size_before));
        out.push_str(&format!("\"size_after\":{},", self.size_after));
        out.push_str(&format!("\"size_reduction\":{}", json_f64(self.size_reduction())));
        out.push('}');
        out
    }

    /// Registers every counter as a deterministic gauge under
    /// `<prefix>.` for the perf-regression gate.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let det = |reg: &mut MetricsRegistry, name: &str, unit, v: u64| {
            let id = reg.counter(&format!("{prefix}.{name}"), unit, true);
            reg.set(id, v);
        };
        det(reg, "functions", "functions", self.functions);
        det(reg, "modules", "modules", self.modules);
        det(reg, "pairs_considered", "pairs", self.pairs_considered);
        det(reg, "cross_module_pairs", "pairs", self.cross_module_pairs);
        det(reg, "optimistic_merges", "merges", self.optimistic_merges);
        det(reg, "verified_merges", "merges", self.verified_merges);
        det(reg, "rolled_back", "merges", self.rolled_back);
        det(reg, "rounds", "rounds", self.rounds);
        det(reg, "differential_probes", "probes", self.differential_probes);
        det(reg, "differential_skips", "probes", self.differential_skips);
        det(reg, "global_profit_bytes", "bytes", self.global_profit_bytes);
        det(reg, "size_before", "bytes", self.size_before);
        det(reg, "size_after", "bytes", self.size_after);
    }
}

/// One surviving merge: the two qualified originals and the bytes the
/// commit saved corpus-wide.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalMergeRecord {
    /// Lexicographically smaller qualified endpoint.
    pub a: String,
    /// Lexicographically larger qualified endpoint.
    pub b: String,
    /// Bytes saved by this commit (merged body + surviving thunks vs the
    /// two originals, with every call site already rewritten).
    pub saved: i64,
    /// Whether the endpoints live in different resident modules.
    pub cross_module: bool,
}

/// The result of a [`GlobalMergePlanner`] run.
#[derive(Clone, Debug, Default)]
pub struct GlobalMergeReport {
    /// Deterministic counters.
    pub stats: GlobalStats,
    /// Surviving merges, in commit order of the final round.
    pub merges: Vec<GlobalMergeRecord>,
    /// Pairs rolled back by verification, in rollback order across
    /// rounds. Feeding these into [`GlobalPlanConfig::excluded`] and
    /// re-running reproduces the final module byte-for-byte.
    pub rolled_back_pairs: Vec<(String, String)>,
}

impl GlobalMergeReport {
    /// Renders the report as one JSON object: `stats` (exactly
    /// [`GLOBAL_STATS_JSON_KEYS`]), `merges`, and `rolled_back`. Every
    /// field is deterministic, so this string is the `global_merge`
    /// determinism key. Qualified names contain only `[A-Za-z0-9_.]`
    /// (enforced at ingest), so no JSON escaping is needed.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.merges.len() * 96);
        out.push_str("{\"stats\":");
        out.push_str(&self.stats.to_json());
        out.push_str(",\"merges\":[");
        for (n, rec) in self.merges.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"a\":\"{}\",\"b\":\"{}\",\"saved\":{},\"cross_module\":{}}}",
                rec.a, rec.b, rec.saved, rec.cross_module
            ));
        }
        out.push_str("],\"rolled_back\":[");
        for (n, (a, b)) in self.rolled_back_pairs.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str(&format!("[\"{a}\",\"{b}\"]"));
        }
        out.push_str("]}");
        out
    }

    /// Registers the stats counters under `<prefix>.`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        self.stats.export_metrics(reg, prefix);
    }
}

/// A merge committed by one optimistic round, before verification.
struct Speculative {
    key: (String, String),
    saved: i64,
    cross_module: bool,
    /// The pair's `FuncId`s in the pristine combined module.
    f1: FuncId,
    f2: FuncId,
}

/// The two-phase cross-module merge engine. See the module docs for the
/// phase structure and the rollback rule.
pub struct GlobalMergePlanner<'c> {
    corpus: &'c Corpus,
    cfg: GlobalPlanConfig,
}

impl<'c> GlobalMergePlanner<'c> {
    pub fn new(corpus: &'c Corpus, cfg: GlobalPlanConfig) -> GlobalMergePlanner<'c> {
        GlobalMergePlanner { corpus, cfg }
    }

    /// Runs both phases to fixpoint and returns the report, the merged
    /// combined module, and the epoch the candidate pairs were drawn at.
    /// The resident corpus is never mutated — callers decide what to do
    /// with the merged module (and whether a raced epoch supersedes it).
    pub fn run(&self) -> Result<(GlobalMergeReport, Module, u64), String> {
        let (epoch, pairs) = self.corpus.global_candidates(self.cfg.k)?;
        let snapshot = self.corpus.stats();

        let mut report = GlobalMergeReport::default();
        report.stats.functions = snapshot.functions_live as u64;
        report.stats.modules = snapshot.modules_live as u64;
        report.stats.pairs_considered = pairs.len() as u64;
        report.stats.cross_module_pairs =
            pairs.iter().filter(|p| p.cross_module).count() as u64;

        let pristine = self.corpus.combined_module()?;
        report.stats.size_before = module_size(&pristine) as u64;

        let mut excluded: HashSet<(String, String)> =
            self.cfg.excluded.iter().map(|(a, b)| pair_key(a, b)).collect();

        loop {
            report.stats.rounds += 1;
            if report.stats.rounds > self.cfg.max_rounds as u64 {
                return Err(format!(
                    "global merge failed to converge after {} rounds",
                    self.cfg.max_rounds
                ));
            }
            let mut m = pristine.clone();
            let committed = self.optimistic_phase(&mut m, &pairs, &excluded)?;
            if report.stats.rounds == 1 {
                report.stats.optimistic_merges = committed.len() as u64;
            }
            let losers = self.verification_phase(&pristine, &m, &committed, &mut report.stats);
            if losers.is_empty() {
                report.stats.verified_merges = committed.len() as u64;
                report.stats.global_profit_bytes =
                    committed.iter().map(|s| s.saved.max(0) as u64).sum();
                report.stats.size_after = module_size(&m) as u64;
                report.merges = committed
                    .into_iter()
                    .map(|s| GlobalMergeRecord {
                        a: s.key.0,
                        b: s.key.1,
                        saved: s.saved,
                        cross_module: s.cross_module,
                    })
                    .collect();
                return Ok((report, m, epoch));
            }
            report.stats.rolled_back += losers.len() as u64;
            for key in losers {
                excluded.insert(key.clone());
                report.rolled_back_pairs.push(key);
            }
        }
    }

    /// One optimistic round: speculative parallel alignment of every
    /// non-excluded pair against the pristine `m`, then a serial commit
    /// walk in pair-priority order. Mirrors the per-module pass's
    /// speculate/commit split, so the merged module and the returned
    /// commit list are byte-identical for every `jobs` value.
    fn optimistic_phase(
        &self,
        m: &mut Module,
        pairs: &[GlobalPair],
        excluded: &HashSet<(String, String)>,
    ) -> Result<Vec<Speculative>, String> {
        let jobs = self.cfg.jobs.max(1);
        let funcs: Vec<FuncId> = m
            .defined_functions()
            .into_iter()
            .filter(|&f| m.function(f).num_linked_insts() > 0)
            .collect();
        let index_of: HashMap<&str, usize> =
            funcs.iter().enumerate().map(|(i, &f)| (m.function(f).name.as_str(), i)).collect();

        // Resolve pairs to function indexes, dropping excluded pairs and
        // any endpoint that is no longer merge-eligible in the combined
        // module (e.g. raced away — the caller re-checks the epoch).
        let work: Vec<(usize, usize, (String, String), bool)> = pairs
            .iter()
            .filter(|p| !excluded.contains(&(p.a.clone(), p.b.clone())))
            .filter_map(|p| {
                let i = *index_of.get(p.a.as_str())?;
                let j = *index_of.get(p.b.as_str())?;
                Some((i, j, (p.a.clone(), p.b.clone()), p.cross_module))
            })
            .collect();

        let parts_cache = BlockPartsCache::build(m, &funcs, jobs);
        let m_ro: &Module = m;
        let funcs_ro = &funcs;
        let work_ro = &work;
        let parts_ro = &parts_cache;
        // Speculative phase: plan every pair against the pristine module
        // on the worker pool. Read-only, so job count changes wall-clock
        // time only.
        let plans: Vec<(PairPlan, usize)> = par_map_indexed_with(
            work.len(),
            jobs,
            AlignScratch::new,
            |scratch, wi| {
                let (i, j, _, _) = work_ro[wi];
                let parts1 = parts_ro.get(i).expect("pristine cache is fully populated");
                let parts2 = parts_ro.get(j).expect("pristine cache is fully populated");
                let plan =
                    plan_blocks_with(m_ro, funcs_ro[i], funcs_ro[j], parts1, parts2, scratch);
                let matched = plan.matched_insts();
                (plan, matched)
            },
        );

        // Serial commit walk in pair-priority order: the only mutation
        // point, identical for every job count.
        let mut committer = Committer::build(m, jobs);
        let mut available = vec![true; funcs.len()];
        let mut committed = Vec::new();
        for ((i, j, key, cross_module), (plan, matched)) in work.into_iter().zip(plans) {
            if !available[i] || !available[j] {
                continue; // an earlier commit consumed an endpoint
            }
            let (f1, f2) = (funcs[i], funcs[j]);
            let fixed = fixed_overhead(committer.droppable(m, f1), committer.droppable(m, f2));
            if matched == 0 || plan.estimated_savings(fixed) <= 0 {
                continue;
            }
            if let Some(saved) = committer.try_commit(m, f1, f2, &plan, self.cfg.merge) {
                available[i] = false;
                available[j] = false;
                committed.push(Speculative { key, saved, cross_module, f1, f2 });
            }
        }
        Ok(committed)
    }

    /// The verification phase over one optimistic round: returns the pair
    /// keys to roll back (empty = the round stands).
    ///
    /// Checks, in order:
    /// 1. profitability — a merge must save at least `min_profit` bytes
    ///    corpus-wide (the committed delta already prices every rewritten
    ///    call site and retained thunk),
    /// 2. the module verifier plus a print→parse fixpoint over the whole
    ///    merged corpus,
    /// 3. an interpreter differential: each merge's endpoints (through
    ///    their thunks, when retained) and every pristine direct caller
    ///    of an endpoint are probed with [`PROBE_SALTS`] in the pristine
    ///    and merged corpus, and the folded observations must agree.
    ///
    /// A failing probe rolls back every merge it can implicate: the
    /// merges whose endpoints the probed function calls directly (or is).
    /// A whole-module failure (verifier, fixpoint) implicates the entire
    /// round — conservative, sound, and still convergent.
    fn verification_phase(
        &self,
        pristine: &Module,
        merged: &Module,
        committed: &[Speculative],
        stats: &mut GlobalStats,
    ) -> Vec<(String, String)> {
        if committed.is_empty() {
            return Vec::new();
        }
        let mut losers: BTreeSet<(String, String)> = BTreeSet::new();

        // 1. Global profitability floor.
        for s in committed {
            if s.saved < self.cfg.min_profit {
                losers.insert(s.key.clone());
            }
        }

        // 2. Whole-module verifier + print→parse fixpoint. `try_commit`
        // verifies each merged function already, so a failure here means
        // a cross-merge interaction — attribute it to the whole round.
        let all_keys = || committed.iter().map(|s| s.key.clone()).collect::<Vec<_>>();
        if f3m_ir::verify::verify_module(merged).is_err() {
            return all_keys();
        }
        let printed = f3m_ir::printer::print_module(merged);
        match f3m_ir::parser::parse_module(&printed) {
            Ok(reparsed) => {
                if f3m_ir::printer::print_module(&reparsed) != printed {
                    return all_keys();
                }
            }
            Err(_) => return all_keys(),
        }

        // 3. Interpreter differential. Probe entry points: each merge's
        // endpoints plus their pristine direct callers — the functions
        // whose behaviour the commit could have changed. `blame` maps an
        // entry point back to the merges it can implicate.
        let callers = direct_callers(pristine);
        let endpoint_of: HashMap<&str, usize> = committed
            .iter()
            .enumerate()
            .flat_map(|(n, s)| [(s.key.0.as_str(), n), (s.key.1.as_str(), n)])
            .collect();
        let mut blame: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
        for (n, s) in committed.iter().enumerate() {
            for &f in &[s.f1, s.f2] {
                let name = &pristine.function(f).name;
                blame.entry(name.clone()).or_default().insert(n);
                for caller in callers.get(&f).into_iter().flatten() {
                    let caller_name = pristine.function(*caller).name.clone();
                    let mut implicated: BTreeSet<usize> = BTreeSet::new();
                    implicated.insert(n);
                    // The caller may reach endpoints of other merges too.
                    if let Some(&other) = endpoint_of.get(caller_name.as_str()) {
                        implicated.insert(other);
                    }
                    blame.entry(caller_name).or_default().extend(implicated);
                }
            }
        }

        for (entry, implicated) in &blame {
            if implicated.iter().all(|&n| losers.contains(&committed[n].key)) {
                continue; // every implicated merge is already rolled back
            }
            let Some(pf) = pristine.lookup_function(entry) else { continue };
            // Dropped originals become declarations in the merged module;
            // their behaviour is covered through their callers.
            let defined_in_merged = merged
                .lookup_function(entry)
                .is_some_and(|f| !merged.function(f).is_declaration);
            if !defined_in_merged {
                continue;
            }
            for salt in PROBE_SALTS {
                let args = probe_args(pristine, pf, salt);
                let base = observe(pristine, entry, &args, self.cfg.limits);
                let obs = observe(merged, entry, &args, self.cfg.limits);
                if base.is_resource_limit() || obs.is_resource_limit() {
                    stats.differential_skips += 1;
                    continue;
                }
                stats.differential_probes += 1;
                if base != obs {
                    for &n in implicated {
                        losers.insert(committed[n].key.clone());
                    }
                    break;
                }
            }
        }

        losers.into_iter().collect()
    }
}

/// Normalizes a pair to its canonical `(min, max)` name order.
pub fn pair_key(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

/// Deterministic per-parameter probe values for one salt.
fn probe_args(m: &Module, f: FuncId, salt: i64) -> Vec<Val> {
    m.function(f)
        .params
        .iter()
        .enumerate()
        .map(|(i, &ty)| match m.types.kind(ty) {
            TypeKind::Int(_) => Val::Int(salt.wrapping_add(i as i64)).normalize(&m.types, ty),
            TypeKind::F32 | TypeKind::F64 => Val::Float(salt as f64 * 0.5 + i as f64),
            TypeKind::Ptr => Val::Ptr(0),
            _ => Val::Undef,
        })
        .collect()
}

/// Map from callee to the defined functions that call it directly (the
/// same callee-position scan the commit index performs).
fn direct_callers(m: &Module) -> HashMap<FuncId, Vec<FuncId>> {
    let mut callers: HashMap<FuncId, Vec<FuncId>> = HashMap::new();
    for (owner, f) in m.functions() {
        if f.is_declaration {
            continue;
        }
        let mut seen: HashSet<FuncId> = HashSet::new();
        for (_, inst) in f.linked_insts() {
            if !matches!(inst.op, Opcode::Call | Opcode::Invoke) {
                continue;
            }
            if let Some(&op) = inst.operands.first() {
                if let ValueKind::FuncRef(target) = f.value(op).kind {
                    if seen.insert(target) {
                        callers.entry(target).or_default().push(owner);
                    }
                }
            }
        }
    }
    callers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    fn workload(name: &str, seed: u64, functions: usize) -> Module {
        let mut spec = f3m_workloads::mini_suite()[0].clone();
        spec.functions = functions;
        spec.seed = seed;
        let mut m = f3m_workloads::build_module(&spec);
        m.name = name.to_string();
        m
    }

    fn corpus_of(mods: &[Module]) -> Corpus {
        let c = Corpus::new(CorpusConfig { shards: 4, jobs: 2, ..CorpusConfig::default() });
        for m in mods {
            c.ingest(m.clone()).unwrap();
        }
        c
    }

    /// Two modules generated from the same seed are function-for-function
    /// twins across the module boundary: global merging must find
    /// cross-module pairs and commit verified merges.
    #[test]
    fn global_merge_finds_cross_module_twins() {
        let mods = [workload("m0", 41, 18), workload("m1", 41, 18)];
        let c = corpus_of(&mods);
        let planner = GlobalMergePlanner::new(&c, GlobalPlanConfig::default());
        let (report, merged, _) = planner.run().unwrap();
        assert!(report.stats.cross_module_pairs > 0, "twins must collide in the index");
        assert!(report.stats.verified_merges > 0, "twins must merge");
        assert!(
            report.merges.iter().any(|r| r.cross_module),
            "at least one surviving merge must cross the module boundary"
        );
        assert!(report.stats.size_after < report.stats.size_before);
        f3m_ir::verify::verify_module(&merged).unwrap();
        assert_eq!(
            report.stats.global_profit_bytes,
            report.merges.iter().map(|r| r.saved.max(0) as u64).sum::<u64>()
        );
    }

    /// The merged module and the full report are byte-identical for any
    /// jobs value (the speculative phase is read-only; commits are a
    /// serial walk).
    #[test]
    fn global_merge_is_jobs_invariant() {
        let mods = [workload("m0", 51, 16), workload("m1", 51, 16), workload("m2", 77, 12)];
        let c = corpus_of(&mods);
        let mut renders = Vec::new();
        for jobs in [1, 2, 8] {
            let cfg = GlobalPlanConfig::default().with_jobs(jobs);
            let (report, merged, _) = GlobalMergePlanner::new(&c, cfg).run().unwrap();
            renders.push((report.to_json(), f3m_ir::printer::print_module(&merged)));
        }
        assert_eq!(renders[0], renders[1], "jobs 1 vs 2");
        assert_eq!(renders[0], renders[2], "jobs 1 vs 8");
    }

    /// Candidate ordering and the full global merge plan are identical
    /// across shard counts 1..=5: exact similarity ties (multiples of
    /// `1/k`) break on the rebuild-stable qualified name everywhere, so
    /// how entries were routed to shards can never leak into the plan.
    #[test]
    fn global_merge_is_shard_count_invariant() {
        let mods = [workload("m0", 41, 16), workload("m1", 41, 16), workload("m2", 90, 12)];
        let mut renders = Vec::new();
        for shards in 1..=5 {
            let c = Corpus::new(CorpusConfig { shards, jobs: 2, ..CorpusConfig::default() });
            for m in &mods {
                c.ingest(m.clone()).unwrap();
            }
            let (_, pairs) = c.global_candidates(4).unwrap();
            let (report, merged, _) =
                GlobalMergePlanner::new(&c, GlobalPlanConfig::default()).run().unwrap();
            renders.push((pairs, report.to_json(), f3m_ir::printer::print_module(&merged)));
        }
        for (n, r) in renders.iter().enumerate().skip(1) {
            assert_eq!(renders[0].0, r.0, "candidate pairs, shards=1 vs shards={}", n + 1);
            assert_eq!(renders[0].1, r.1, "report, shards=1 vs shards={}", n + 1);
            assert_eq!(renders[0].2, r.2, "merged module, shards=1 vs shards={}", n + 1);
        }
    }

    /// Re-running on the same corpus is deterministic end to end.
    #[test]
    fn global_merge_is_deterministic_across_runs() {
        let mods = [workload("m0", 63, 14), workload("m1", 63, 14)];
        let c = corpus_of(&mods);
        let run = || {
            let (report, merged, _) =
                GlobalMergePlanner::new(&c, GlobalPlanConfig::default()).run().unwrap();
            (report.to_json(), f3m_ir::printer::print_module(&merged))
        };
        assert_eq!(run(), run());
    }

    /// An unreachable profitability floor rolls everything back and the
    /// replay converges to the pristine module.
    #[test]
    fn verification_floor_rolls_back_to_pristine() {
        let mods = [workload("m0", 41, 14), workload("m1", 41, 14)];
        let c = corpus_of(&mods);
        let cfg = GlobalPlanConfig { min_profit: i64::MAX, ..GlobalPlanConfig::default() };
        let (report, merged, _) = GlobalMergePlanner::new(&c, cfg).run().unwrap();
        assert_eq!(report.stats.verified_merges, 0);
        assert!(report.stats.rolled_back > 0, "the optimistic merges must be rolled back");
        assert!(report.stats.rounds > 1);
        let pristine = c.combined_module().unwrap();
        assert_eq!(
            f3m_ir::printer::print_module(&merged),
            f3m_ir::printer::print_module(&pristine),
            "full rollback must leave no ghost state"
        );
        assert_eq!(report.stats.size_before, report.stats.size_after);
    }

    /// Verification-phase rollback is sound: replaying the run with the
    /// rolled-back pairs excluded up front converges in one round to the
    /// byte-identical merged module — the losers leave no ghost state.
    #[test]
    fn rollback_replay_matches_upfront_exclusion() {
        let mods = [workload("m0", 41, 16), workload("m1", 41, 16)];
        let c = corpus_of(&mods);
        // Probe the profit distribution, then set the floor at its top
        // so some merges survive verification and the rest roll back.
        let (probe, _, _) =
            GlobalMergePlanner::new(&c, GlobalPlanConfig::default()).run().unwrap();
        let max = probe.merges.iter().map(|r| r.saved).max().expect("twins must merge");
        let min = probe.merges.iter().map(|r| r.saved).min().unwrap();
        assert!(min < max, "workload must produce a profit spread");
        let cfg = GlobalPlanConfig { min_profit: max, ..GlobalPlanConfig::default() };
        let (a, merged_a, _) = GlobalMergePlanner::new(&c, cfg.clone()).run().unwrap();
        assert!(a.stats.verified_merges > 0, "the floor must keep the top merges");
        assert!(a.stats.rolled_back > 0, "the floor must roll back the rest");
        assert!(a.stats.rounds > 1);

        let replay = GlobalPlanConfig { excluded: a.rolled_back_pairs.clone(), ..cfg };
        let (b, merged_b, _) = GlobalMergePlanner::new(&c, replay).run().unwrap();
        assert_eq!(b.stats.rolled_back, 0, "pre-excluded losers cannot roll back again");
        assert_eq!(b.stats.rounds, 1, "upfront exclusion must converge immediately");
        assert_eq!(a.merges, b.merges, "surviving merges must be identical");
        assert_eq!(
            f3m_ir::printer::print_module(&merged_a),
            f3m_ir::printer::print_module(&merged_b),
            "rollback must be equivalent to never having tried the losers"
        );
    }

    /// The corpus-global candidate pull feeding the planner is memoized:
    /// a warm pull recomputes nothing, and after `update_function` only
    /// the dirtied band-collision neighborhood is re-ranked — a
    /// subsequent global merge re-verifies only plans whose candidate
    /// neighborhoods intersect the dirty set.
    #[test]
    fn global_candidates_recompute_only_the_dirty_neighborhood_after_update() {
        let mods = [workload("m0", 41, 14), workload("m1", 41, 14)];
        let c = corpus_of(&mods);
        let (_, cold) = c.global_candidates(4).unwrap();
        let miss_warmed = c.stats().memo_misses;
        let (_, warm) = c.global_candidates(4).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(c.stats().memo_misses, miss_warmed, "warm global pull recomputes nothing");

        // Touch one function: semantically a no-op, but it dirties its
        // band-collision neighborhood.
        let touched = mods[0]
            .defined_functions()
            .into_iter()
            .filter(|&f| mods[0].function(f).num_linked_insts() > 0)
            .map(|f| mods[0].function(f).name.clone())
            .find(|n| n != "__driver")
            .unwrap();
        let up = c.update_function("m0", &touched, None).unwrap();
        let miss_before = c.stats().memo_misses;
        let (epoch, after) = c.global_candidates(4).unwrap();
        assert_eq!(epoch, up.epoch);
        assert_eq!(after, warm, "a touch must not change the candidate plan");
        let recomputed = c.stats().memo_misses - miss_before;
        assert_eq!(
            recomputed, up.funcs_invalidated,
            "only the dirty neighborhood is re-ranked"
        );
        assert!(
            recomputed < c.stats().functions_live as u64,
            "a touch must not flush the whole memo"
        );

        // The post-update plan is exactly what a cold corpus over the
        // same modules produces — memo reuse can't perturb the merge.
        let (report, merged, _) =
            GlobalMergePlanner::new(&c, GlobalPlanConfig::default()).run().unwrap();
        let fresh = corpus_of(&mods);
        let (fresh_report, fresh_merged, _) =
            GlobalMergePlanner::new(&fresh, GlobalPlanConfig::default()).run().unwrap();
        assert_eq!(report.to_json(), fresh_report.to_json());
        assert_eq!(
            f3m_ir::printer::print_module(&merged),
            f3m_ir::printer::print_module(&fresh_merged)
        );
    }

    /// `GlobalStats::to_json` emits exactly the documented key set, in
    /// order (mirrors the `MergeStats` contract test).
    #[test]
    fn global_stats_json_emits_exactly_the_documented_key_set() {
        let stats = GlobalStats::default();
        let json = stats.to_json();
        let mut keys = Vec::new();
        let bytes = json.as_bytes();
        let mut depth = 0usize;
        let mut i = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'{' | b'[' => depth += 1,
                b'}' | b']' => depth -= 1,
                b'"' if depth == 1 => {
                    let start = i + 1;
                    let end = start + json[start..].find('"').unwrap();
                    if bytes.get(end + 1) == Some(&b':') {
                        keys.push(&json[start..end]);
                    }
                    i = end;
                }
                _ => {}
            }
            i += 1;
        }
        assert_eq!(keys, GLOBAL_STATS_JSON_KEYS);
    }
}
