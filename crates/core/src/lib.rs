//! # f3m-core — Fast Focused Function Merging
//!
//! The primary contribution of the paper "F3M: Fast Focused Function
//! Merging" (CGO 2022), reimplemented over the [`f3m_ir`] substrate:
//!
//! - [`align`] — sequence alignment (whole-function Needleman–Wunsch for
//!   statistics, HyFM's linear block alignment for merging),
//! - [`block_pairing`] — block-level merge planning,
//! - [`codegen`] — merged-function generation with `%fid` guards,
//!   operand selects, per-edge dispatch, phi reconstruction and SSA
//!   dominance repair (including the Section III-E bug fixes),
//! - [`rank`] — the [`CandidateSearch`](rank::CandidateSearch) seam with
//!   the exhaustive (HyFM) and LSH (F3M) search structures,
//! - [`commit`] — the incremental reference index and profitability-checked
//!   commit of a planned merge,
//! - [`report`] — per-stage timing, counters and the JSON report,
//! - [`pass`] — the thin driver looping rank → align → codegen/commit over
//!   HyFM / F3M-static / F3M-adaptive strategies,
//! - [`corpus`] — the resident multi-module corpus with incremental
//!   (epoch-versioned, sharded) indexing behind the `f3m-serve` daemon,
//! - [`analysis`] — exhaustive pairwise metrics behind Figures 4/6/10.
//!
//! # Examples
//!
//! ```
//! use f3m_core::pass::{run_pass, PassConfig};
//! use f3m_ir::parser::parse_module;
//!
//! let mut m = parse_module(r#"
//! module "demo" {
//! define @a(i32 %0) -> i32 {
//! bb0:
//!   %1 = add i32 %0, 1
//!   %2 = mul i32 %1, 3
//!   %3 = xor i32 %2, 255
//!   %4 = sub i32 %3, %0
//!   %5 = add i32 %4, 10
//!   %6 = shl i32 %5, 2
//!   %7 = and i32 %6, 4095
//!   %8 = or i32 %7, 5
//!   %9 = sub i32 %8, %1
//!   %10 = mul i32 %9, 7
//!   ret i32 %10
//! }
//! define @b(i32 %0) -> i32 {
//! bb0:
//!   %1 = add i32 %0, 1
//!   %2 = mul i32 %1, 3
//!   %3 = xor i32 %2, 255
//!   %4 = sub i32 %3, %0
//!   %5 = add i32 %4, 10
//!   %6 = shl i32 %5, 2
//!   %7 = and i32 %6, 4095
//!   %8 = or i32 %7, 5
//!   %9 = sub i32 %8, %1
//!   %10 = mul i32 %9, 7
//!   ret i32 %10
//! }
//! }
//! "#).unwrap();
//! let report = run_pass(&mut m, &PassConfig::f3m());
//! assert_eq!(report.stats.merges_committed, 1);
//! assert!(report.stats.size_after < report.stats.size_before);
//! ```

pub mod align;
pub mod analysis;
pub mod block_pairing;
pub mod codegen;
pub mod commit;
pub mod corpus;
pub mod dce;
pub mod global;
pub mod pass;
pub mod profile;
pub mod rank;
pub mod report;

pub use codegen::{MergeConfig, MergeError, RepairMode};
pub use corpus::{combine_modules, Corpus, CorpusConfig, CorpusStats, GlobalPair, QueryResult};
pub use global::{
    GlobalMergePlanner, GlobalMergeReport, GlobalPlanConfig, GlobalStats, GLOBAL_STATS_JSON_KEYS,
};
pub use pass::{run_pass, run_pass_traced, MergeReport, MergeStats, PassConfig, Strategy};
pub use profile::Profile;
pub use rank::{
    CandidateSearch, ExhaustiveOpcodeSearch, IndexStats, LshBackendSearch, LshMinHashSearch,
    SearchScratch,
};
pub use report::STATS_JSON_KEYS;
