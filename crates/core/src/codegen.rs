//! Merged-function code generation.
//!
//! Given two functions and a block-level merge plan, builds a single
//! function that behaves as either original depending on a leading `i1`
//! *function identifier* parameter (`false` = first function, `true` =
//! second), as in HyFM/SalSSA:
//!
//! - paired blocks become chains of shared segments; runs of mismatched
//!   instructions are placed in guard diamonds (`condbr %fid`),
//! - matched instructions whose operands map to different merged values
//!   read through `select %fid` instructions,
//! - terminators whose targets diverge branch through per-edge dispatch
//!   blocks,
//! - phi-nodes are rebuilt against the merged CFG, inserting selects at
//!   predecessor exits where the two sides disagree,
//! - SSA dominance violations introduced by cross-side code reuse are
//!   repaired by demoting values to stack slots (`alloca`/`store`/`load`).
//!
//! The demotion step implements the two bug fixes of Section III-E of the
//! paper; [`RepairMode::LegacyBuggy`] reproduces HyFM's original buggy
//! store placement so tests can demonstrate the miscompilation the paper
//! reports.

use std::collections::HashMap;

use f3m_ir::cfg::Cfg;
use f3m_ir::dom::DomTree;
use f3m_ir::ids::{BlockId, FuncId, InstId, ValueId};
use f3m_ir::inst::{Instruction, Opcode};
use f3m_ir::function::Function;
use f3m_ir::module::Module;
use f3m_ir::types::{TypeId, TypeStore};
use f3m_ir::value::ValueKind;

use crate::align::AlignEntry;
use crate::block_pairing::{block_parts, insts_mergeable, PairPlan};

/// How SSA dominance violations are repaired.
///
/// Section III-E of the paper: "While most such violations are resolved by
/// inserting new phi-nodes, a small number of them is resolved by breaking
/// the use-def chains of variables via the stack memory."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RepairMode {
    /// SSA reconstruction: phi-nodes are inserted along the merged CFG so
    /// every use sees the reaching definition (with `undef` on the phantom
    /// cross-side paths that execution can never take). The cheapest
    /// repair, and the default.
    #[default]
    Phi,
    /// Stack demotion with the paper's *corrected* store placement
    /// (Section III-E): stores go to the first legal point after the
    /// definition, and only violating uses are rewritten.
    Stack,
    /// HyFM's original buggy stack demotion: the store goes to the *end*
    /// of the defining block while every use in that block is still
    /// rewritten to a load — same-block uses then read a stale value.
    /// Provided so tests and benches can reproduce the miscompilation the
    /// paper describes.
    LegacyBuggy,
}

/// Code generation options.
#[derive(Clone, Copy, Debug, Default)]
pub struct MergeConfig {
    /// Dominance-repair behaviour.
    pub repair: RepairMode,
}

/// Why a merge could not be generated.
#[derive(Clone, Debug, PartialEq)]
pub enum MergeError {
    /// The functions' return types differ; thunking cannot reconcile them.
    IncompatibleReturnTypes,
    /// Dominance repair did not converge (internal invariant failure).
    RepairFailed(String),
    /// Internal inconsistency while rebuilding phis.
    Internal(String),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::IncompatibleReturnTypes => write!(f, "return types differ"),
            MergeError::RepairFailed(d) => write!(f, "dominance repair failed: {d}"),
            MergeError::Internal(d) => write!(f, "internal merge error: {d}"),
        }
    }
}

impl std::error::Error for MergeError {}

/// A merged function, not yet added to any module.
#[derive(Debug)]
pub struct MergedFunction {
    /// The function body. Parameter 0 is the `i1` function identifier.
    pub func: Function,
    /// Maps each parameter index of the first function to its merged
    /// argument index.
    pub param_map1: Vec<usize>,
    /// Same for the second function.
    pub param_map2: Vec<usize>,
    /// Number of `select` instructions inserted (guard overhead metric).
    pub selects_inserted: usize,
    /// Number of values demoted to stack slots during repair.
    pub demotions: usize,
}

#[derive(Clone, Copy, Debug)]
enum Src {
    Merged(InstId, InstId),
    Side1(InstId),
    Side2(InstId),
}

/// Original-edge attribution: which original predecessor block(s) a final
/// CFG edge corresponds to, per side.
type EdgeMap = HashMap<(BlockId, BlockId), (Option<BlockId>, Option<BlockId>)>;

struct MergeBuilder<'m> {
    m: &'m Module,
    fa: &'m Function,
    fb: &'m Function,
    nf: Function,
    cfg: MergeConfig,
    void_ty: TypeId,
    ptr_ty: TypeId,
    param_map1: Vec<usize>,
    param_map2: Vec<usize>,
    map1: HashMap<ValueId, ValueId>,
    map2: HashMap<ValueId, ValueId>,
    entry1: HashMap<BlockId, BlockId>,
    entry2: HashMap<BlockId, BlockId>,
    exit1: HashMap<BlockId, BlockId>,
    exit2: HashMap<BlockId, BlockId>,
    pendings: Vec<(InstId, Src)>,
    edges: EdgeMap,
    selects_inserted: usize,
    demotions: usize,
}

/// Builds the merged function for `(f1, f2)` under `plan`.
///
/// # Errors
///
/// [`MergeError::IncompatibleReturnTypes`] when the return types differ;
/// [`MergeError::RepairFailed`] if the dominance repair loop does not
/// converge (which would indicate a bug — it is bounded but always
/// converges on valid input).
pub fn build_merged(
    m: &Module,
    f1: FuncId,
    f2: FuncId,
    plan: &PairPlan,
    cfg: MergeConfig,
    name: String,
) -> Result<MergedFunction, MergeError> {
    let fa = m.function(f1);
    let fb = m.function(f2);
    if fa.ret_ty != fb.ret_ty {
        return Err(MergeError::IncompatibleReturnTypes);
    }

    // Pre-interned scalar ids are stable across stores, so a scratch store
    // gives us bool/void/ptr without mutating the module.
    let mut scratch = TypeStore::new();
    let bool_ty = scratch.bool();
    let void_ty = scratch.void();
    let ptr_ty = scratch.ptr();

    // ---- merged parameter list -----------------------------------------
    let mut merged_params: Vec<TypeId> = vec![bool_ty];
    let mut param_map1 = Vec::with_capacity(fa.params.len());
    for &p in &fa.params {
        param_map1.push(merged_params.len());
        merged_params.push(p);
    }
    let mut used2 = vec![false; merged_params.len()];
    used2[0] = true; // fid slot never shared
    let mut param_map2 = Vec::with_capacity(fb.params.len());
    for &p in &fb.params {
        let reuse = merged_params
            .iter()
            .enumerate()
            .position(|(i, &t)| !used2[i] && i > 0 && t == p);
        match reuse {
            Some(i) => {
                used2[i] = true;
                param_map2.push(i);
            }
            None => {
                param_map2.push(merged_params.len());
                merged_params.push(p);
                used2.push(true);
            }
        }
    }

    let nf = Function::new(name, merged_params, fa.ret_ty);
    let mut b = MergeBuilder {
        m,
        fa,
        fb,
        nf,
        cfg,
        void_ty,
        ptr_ty,
        param_map1,
        param_map2,
        map1: HashMap::new(),
        map2: HashMap::new(),
        entry1: HashMap::new(),
        entry2: HashMap::new(),
        exit1: HashMap::new(),
        exit2: HashMap::new(),
        pendings: Vec::new(),
        edges: EdgeMap::new(),
        selects_inserted: 0,
        demotions: 0,
    };
    b.build(plan)?;
    Ok(MergedFunction {
        func: b.nf,
        param_map1: b.param_map1,
        param_map2: b.param_map2,
        selects_inserted: b.selects_inserted,
        demotions: b.demotions,
    })
}

impl<'m> MergeBuilder<'m> {
    fn fid(&self) -> ValueId {
        self.nf.arg(0)
    }

    fn build(&mut self, plan: &PairPlan) -> Result<(), MergeError> {
        let entry0 = self.nf.add_block("entry");

        // ---- phase 1: structure ----------------------------------------
        for pair in &plan.pairs {
            self.emit_pair(pair);
        }
        for &b1 in &plan.unpaired1 {
            self.emit_clone(b1, true);
        }
        for &b2 in &plan.unpaired2 {
            self.emit_clone(b2, false);
        }

        // Entry dispatch.
        let h1 = self.entry1[&self.fa.entry()];
        let h2 = self.entry2[&self.fb.entry()];
        if h1 == h2 {
            self.append_raw(entry0, Opcode::Br, self.void_ty, vec![], vec![h1]);
        } else {
            let fid = self.fid();
            self.append_raw(entry0, Opcode::CondBr, self.void_ty, vec![fid], vec![h2, h1]);
        }

        // ---- phase 2a: terminator targets ------------------------------
        self.resolve_terminators();
        // ---- phase 2b: ordinary operands --------------------------------
        self.resolve_operands();
        // ---- phase 2c: phis ---------------------------------------------
        self.resolve_phis()?;
        // ---- phase 3: dominance repair ----------------------------------
        self.repair_dominance()?;
        Ok(())
    }

    // ---- emission helpers ----------------------------------------------

    fn append_raw(
        &mut self,
        bb: BlockId,
        op: Opcode,
        ty: TypeId,
        operands: Vec<ValueId>,
        blocks: Vec<BlockId>,
    ) -> Option<ValueId> {
        self.nf
            .append_inst(
                &self.m.types,
                bb,
                Instruction {
                    op,
                    ty,
                    operands,
                    blocks,
                    pred: None,
                    aux_ty: None,
                    parent: bb,
                    result: None,
                },
            )
            .1
    }

    fn emit_pending(&mut self, bb: BlockId, src: Src) {
        let (proto_f, proto_id) = match src {
            Src::Merged(i1, _) | Src::Side1(i1) => (self.fa, i1),
            Src::Side2(i2) => (self.fb, i2),
        };
        let proto = proto_f.inst(proto_id);
        let inst = Instruction {
            op: proto.op,
            ty: proto.ty,
            operands: Vec::new(),
            blocks: Vec::new(),
            pred: proto.pred,
            aux_ty: proto.aux_ty,
            parent: bb,
            result: None,
        };
        let (new_id, result) = self.nf.append_inst(&self.m.types, bb, inst);
        if let Some(r) = result {
            match src {
                Src::Merged(i1, i2) => {
                    if let Some(r1) = self.fa.inst(i1).result {
                        self.map1.insert(r1, r);
                    }
                    if let Some(r2) = self.fb.inst(i2).result {
                        self.map2.insert(r2, r);
                    }
                }
                Src::Side1(i1) => {
                    if let Some(r1) = self.fa.inst(i1).result {
                        self.map1.insert(r1, r);
                    }
                }
                Src::Side2(i2) => {
                    if let Some(r2) = self.fb.inst(i2).result {
                        self.map2.insert(r2, r);
                    }
                }
            }
        }
        self.pendings.push((new_id, src));
    }

    fn emit_pair(&mut self, pair: &crate::block_pairing::BlockPairPlan) {
        let parts1 = block_parts(self.fa, pair.b1);
        let parts2 = block_parts(self.fb, pair.b2);
        let head = self.nf.add_block(format!("pair.{}.{}", pair.b1.index(), pair.b2.index()));
        self.entry1.insert(pair.b1, head);
        self.entry2.insert(pair.b2, head);

        // Merged phi prefix.
        for k in 0..pair.phi_pairs {
            self.emit_pending(head, Src::Merged(parts1.phis[k], parts2.phis[k]));
        }

        // Body runs: group alignment entries, validating matches with the
        // strict slot-wise compatibility check.
        let mut current = head;
        let mut pending_mismatch: (Vec<InstId>, Vec<InstId>) = (Vec::new(), Vec::new());
        let flush =
            |this: &mut Self, current: &mut BlockId, mm: &mut (Vec<InstId>, Vec<InstId>)| {
                if mm.0.is_empty() && mm.1.is_empty() {
                    return;
                }
                let s1 = this.nf.add_block(format!("side1.{}", current.index()));
                let s2 = this.nf.add_block(format!("side2.{}", current.index()));
                let join = this.nf.add_block(format!("join.{}", current.index()));
                let fid = this.fid();
                this.append_raw(*current, Opcode::CondBr, this.void_ty, vec![fid], vec![s2, s1]);
                for &i in &mm.0 {
                    this.emit_pending(s1, Src::Side1(i));
                }
                for &j in &mm.1 {
                    this.emit_pending(s2, Src::Side2(j));
                }
                this.append_raw(s1, Opcode::Br, this.void_ty, vec![], vec![join]);
                this.append_raw(s2, Opcode::Br, this.void_ty, vec![], vec![join]);
                mm.0.clear();
                mm.1.clear();
                *current = join;
            };
        for entry in &pair.body.entries {
            match *entry {
                AlignEntry::Match(i, j) => {
                    let (i1, i2) = (parts1.body[i], parts2.body[j]);
                    if insts_mergeable(self.fa, i1, self.fb, i2) {
                        flush(self, &mut current, &mut pending_mismatch);
                        self.emit_pending(current, Src::Merged(i1, i2));
                    } else {
                        pending_mismatch.0.push(i1);
                        pending_mismatch.1.push(i2);
                    }
                }
                AlignEntry::GapRight(i) => pending_mismatch.0.push(parts1.body[i]),
                AlignEntry::GapLeft(j) => pending_mismatch.1.push(parts2.body[j]),
            }
        }

        // Terminator.
        let term_ok = pair.term_match
            && insts_mergeable(self.fa, parts1.term, self.fb, parts2.term);
        if term_ok {
            flush(self, &mut current, &mut pending_mismatch);
            self.emit_pending(current, Src::Merged(parts1.term, parts2.term));
            self.exit1.insert(pair.b1, current);
            self.exit2.insert(pair.b2, current);
        } else {
            // Fold the trailing mismatch run and both terminators into one
            // final diamond that never rejoins.
            let s1 = self.nf.add_block(format!("term1.{}", current.index()));
            let s2 = self.nf.add_block(format!("term2.{}", current.index()));
            let fid = self.fid();
            self.append_raw(current, Opcode::CondBr, self.void_ty, vec![fid], vec![s2, s1]);
            let (mm1, mm2) = std::mem::take(&mut pending_mismatch);
            for i in mm1 {
                self.emit_pending(s1, Src::Side1(i));
            }
            for j in mm2 {
                self.emit_pending(s2, Src::Side2(j));
            }
            self.emit_pending(s1, Src::Side1(parts1.term));
            self.emit_pending(s2, Src::Side2(parts2.term));
            self.exit1.insert(pair.b1, s1);
            self.exit2.insert(pair.b2, s2);
        }
    }

    fn emit_clone(&mut self, bb: BlockId, side1: bool) {
        let f = if side1 { self.fa } else { self.fb };
        let nb = self
            .nf
            .add_block(format!("clone{}.{}", if side1 { 1 } else { 2 }, bb.index()));
        if side1 {
            self.entry1.insert(bb, nb);
            self.exit1.insert(bb, nb);
        } else {
            self.entry2.insert(bb, nb);
            self.exit2.insert(bb, nb);
        }
        let insts: Vec<InstId> = f.block(bb).insts.clone();
        for i in insts {
            self.emit_pending(nb, if side1 { Src::Side1(i) } else { Src::Side2(i) });
        }
    }

    // ---- phase 2a -------------------------------------------------------

    fn record_edge(&mut self, head: BlockId, pred: BlockId, o1: Option<BlockId>, o2: Option<BlockId>) {
        let e = self.edges.entry((head, pred)).or_insert((None, None));
        if o1.is_some() {
            e.0 = o1;
        }
        if o2.is_some() {
            e.1 = o2;
        }
    }

    fn resolve_terminators(&mut self) {
        let pendings = self.pendings.clone();
        for (new_id, src) in pendings {
            if !self.nf.inst(new_id).op.is_terminator() {
                continue;
            }
            let parent = self.nf.inst(new_id).parent;
            match src {
                Src::Merged(t1, t2) => {
                    let (b1src, b2src) =
                        (self.fa.inst(t1).parent, self.fb.inst(t2).parent);
                    let targets1 = self.fa.inst(t1).blocks.clone();
                    let targets2 = self.fb.inst(t2).blocks.clone();
                    let mut new_targets = Vec::with_capacity(targets1.len());
                    for (k, &o1) in targets1.iter().enumerate() {
                        let o2 = targets2[k];
                        let m1 = self.entry1[&o1];
                        let m2 = self.entry2[&o2];
                        if m1 == m2 {
                            self.record_edge(m1, parent, Some(b1src), Some(b2src));
                            new_targets.push(m1);
                        } else {
                            let d = self
                                .nf
                                .add_block(format!("dispatch.{}.{}", parent.index(), k));
                            let fid = self.fid();
                            self.append_raw(
                                d,
                                Opcode::CondBr,
                                self.void_ty,
                                vec![fid],
                                vec![m2, m1],
                            );
                            self.record_edge(m1, d, Some(b1src), None);
                            self.record_edge(m2, d, None, Some(b2src));
                            new_targets.push(d);
                        }
                    }
                    self.nf.inst_mut(new_id).blocks = new_targets;
                }
                Src::Side1(t1) => {
                    let b1src = self.fa.inst(t1).parent;
                    let targets: Vec<BlockId> = self.fa.inst(t1).blocks.clone();
                    let mapped: Vec<BlockId> =
                        targets.iter().map(|t| self.entry1[t]).collect();
                    for &mt in &mapped {
                        self.record_edge(mt, parent, Some(b1src), None);
                    }
                    self.nf.inst_mut(new_id).blocks = mapped;
                }
                Src::Side2(t2) => {
                    let b2src = self.fb.inst(t2).parent;
                    let targets: Vec<BlockId> = self.fb.inst(t2).blocks.clone();
                    let mapped: Vec<BlockId> =
                        targets.iter().map(|t| self.entry2[t]).collect();
                    for &mt in &mapped {
                        self.record_edge(mt, parent, None, Some(b2src));
                    }
                    self.nf.inst_mut(new_id).blocks = mapped;
                }
            }
        }
    }

    // ---- phase 2b -------------------------------------------------------

    fn resolve1(&mut self, v: ValueId) -> ValueId {
        resolve_side(
            self.m,
            self.fa,
            &mut self.nf,
            &self.map1,
            &self.param_map1,
            self.ptr_ty,
            v,
        )
    }

    fn resolve2(&mut self, v: ValueId) -> ValueId {
        resolve_side(
            self.m,
            self.fb,
            &mut self.nf,
            &self.map2,
            &self.param_map2,
            self.ptr_ty,
            v,
        )
    }

    /// Inserts `select %fid, v2, v1` immediately before position `pos` of
    /// `bb` and returns its value.
    fn insert_select(&mut self, bb: BlockId, pos: usize, v1: ValueId, v2: ValueId) -> ValueId {
        let ty = self.nf.value(v1).ty;
        let fid = self.fid();
        let (_, val) = self.nf.insert_inst(
            &self.m.types,
            bb,
            pos,
            Instruction {
                op: Opcode::Select,
                ty,
                operands: vec![fid, v2, v1],
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: bb,
                result: None,
            },
        );
        self.selects_inserted += 1;
        val.expect("select produces a value")
    }

    fn resolve_operands(&mut self) {
        let pendings = self.pendings.clone();
        for (new_id, src) in pendings {
            if self.nf.inst(new_id).op == Opcode::Phi {
                continue;
            }
            let resolved = match src {
                Src::Merged(i1, i2) => {
                    let ops1 = self.fa.inst(i1).operands.clone();
                    let ops2 = self.fb.inst(i2).operands.clone();
                    let mut out = Vec::with_capacity(ops1.len());
                    for (&v1, &v2) in ops1.iter().zip(ops2.iter()) {
                        let m1 = self.resolve1(v1);
                        let m2 = self.resolve2(v2);
                        if m1 == m2 {
                            out.push(m1);
                        } else {
                            let bb = self.nf.inst(new_id).parent;
                            let pos = self
                                .nf
                                .block(bb)
                                .insts
                                .iter()
                                .position(|&i| i == new_id)
                                .expect("inst in its block");
                            out.push(self.insert_select(bb, pos, m1, m2));
                        }
                    }
                    out
                }
                Src::Side1(i1) => {
                    let ops = self.fa.inst(i1).operands.clone();
                    ops.into_iter().map(|v| self.resolve1(v)).collect()
                }
                Src::Side2(i2) => {
                    let ops = self.fb.inst(i2).operands.clone();
                    ops.into_iter().map(|v| self.resolve2(v)).collect()
                }
            };
            self.nf.inst_mut(new_id).operands = resolved;
        }
    }

    // ---- phase 2c -------------------------------------------------------

    fn resolve_phis(&mut self) -> Result<(), MergeError> {
        let cfg = Cfg::compute(&self.nf);
        let pendings = self.pendings.clone();
        for (new_id, src) in pendings {
            if self.nf.inst(new_id).op != Opcode::Phi {
                continue;
            }
            let h = self.nf.inst(new_id).parent;
            let mut preds: Vec<BlockId> = cfg.preds(h).to_vec();
            preds.sort();
            preds.dedup();
            let mut in_vals = Vec::with_capacity(preds.len());
            let mut in_blocks = Vec::with_capacity(preds.len());
            for p in preds {
                let &(o1, o2) = self.edges.get(&(h, p)).ok_or_else(|| {
                    MergeError::Internal(format!(
                        "no edge attribution for {:?} -> {:?}",
                        p, h
                    ))
                })?;
                let val = match (src, o1, o2) {
                    (Src::Merged(p1, p2), Some(x1), Some(x2)) => {
                        let v1 = incoming_of(self.fa, p1, x1)?;
                        let v2 = incoming_of(self.fb, p2, x2)?;
                        let m1 = self.resolve1(v1);
                        let m2 = self.resolve2(v2);
                        if m1 == m2 {
                            m1
                        } else {
                            // Select at the end of the shared predecessor.
                            let pos = self.nf.block(p).insts.len() - 1;
                            self.insert_select(p, pos, m1, m2)
                        }
                    }
                    (Src::Merged(p1, _) | Src::Side1(p1), Some(x1), None) => {
                        let v1 = incoming_of(self.fa, p1, x1)?;
                        self.resolve1(v1)
                    }
                    (Src::Merged(_, p2) | Src::Side2(p2), None, Some(x2)) => {
                        let v2 = incoming_of(self.fb, p2, x2)?;
                        self.resolve2(v2)
                    }
                    (Src::Side1(p1), Some(x1), Some(_)) => {
                        let v1 = incoming_of(self.fa, p1, x1)?;
                        self.resolve1(v1)
                    }
                    (Src::Side2(p2), Some(_), Some(x2)) => {
                        let v2 = incoming_of(self.fb, p2, x2)?;
                        self.resolve2(v2)
                    }
                    _ => {
                        return Err(MergeError::Internal(format!(
                            "edge into phi block {h:?} from {p:?} has no usable attribution"
                        )))
                    }
                };
                in_vals.push(val);
                in_blocks.push(p);
            }
            let inst = self.nf.inst_mut(new_id);
            inst.operands = in_vals;
            inst.blocks = in_blocks;
        }
        Ok(())
    }

    // ---- phase 3: dominance repair ---------------------------------------

    fn repair_dominance(&mut self) -> Result<(), MergeError> {
        for _round in 0..16 {
            let violations = find_violations(&self.nf);
            if violations.is_empty() {
                return Ok(());
            }
            // Group violating uses by defining instruction.
            let mut by_def: HashMap<InstId, Vec<UseSite>> = HashMap::new();
            for (def, site) in violations {
                by_def.entry(def).or_default().push(site);
            }
            let mut defs: Vec<InstId> = by_def.keys().copied().collect();
            defs.sort();
            for def in defs {
                match self.cfg.repair {
                    RepairMode::Phi => self.reconstruct_ssa(def, &by_def[&def]),
                    RepairMode::Stack | RepairMode::LegacyBuggy => {
                        self.demote(def, &by_def[&def])
                    }
                }
            }
        }
        Err(MergeError::RepairFailed("did not converge in 16 rounds".into()))
    }

    /// Phi-based SSA reconstruction for one dominance-violating value:
    /// walks the merged CFG backwards from each violating use, inserting
    /// phi-nodes at join points (Braun-style on-the-fly construction with
    /// operandless placeholder phis to break cycles). Paths the definition
    /// cannot reach contribute `undef` — those are exactly the cross-side
    /// paths execution never takes for the side that owns the value.
    fn reconstruct_ssa(&mut self, def: InstId, uses: &[UseSite]) {
        self.demotions += 1; // counted as a repaired value either way
        let def_val = self.nf.inst(def).result.expect("repairing a valued instruction");
        let ty = self.nf.value(def_val).ty;
        let def_block = self.nf.inst(def).parent;
        let cfg = Cfg::compute(&self.nf);
        let mut memo: HashMap<BlockId, ValueId> = HashMap::new();
        for site in uses {
            match *site {
                UseSite::Operand { inst, slot } => {
                    let ub = self.nf.inst(inst).parent;
                    debug_assert_ne!(
                        ub, def_block,
                        "same-block use-before-def cannot occur in merged code"
                    );
                    let v = self.read_at_entry(ub, def_val, def_block, ty, &cfg, &mut memo);
                    self.nf.inst_mut(inst).operands[slot] = v;
                }
                UseSite::PhiIncoming { inst, slot, block } => {
                    let v = self.read_at_end(block, def_val, def_block, ty, &cfg, &mut memo);
                    self.nf.inst_mut(inst).operands[slot] = v;
                }
            }
        }
    }

    /// The reaching value of `def` at the end of `bb`.
    #[allow(clippy::too_many_arguments)]
    fn read_at_end(
        &mut self,
        bb: BlockId,
        def_val: ValueId,
        def_block: BlockId,
        ty: TypeId,
        cfg: &Cfg,
        memo: &mut HashMap<BlockId, ValueId>,
    ) -> ValueId {
        if bb == def_block {
            return def_val;
        }
        if let Some(&v) = memo.get(&bb) {
            return v;
        }
        if !cfg.is_reachable(bb) {
            let u = self.nf.undef(ty);
            memo.insert(bb, u);
            return u;
        }
        let mut preds: Vec<BlockId> = cfg.preds(bb).to_vec();
        preds.sort();
        preds.dedup();
        if preds.is_empty() {
            let u = self.nf.undef(ty);
            memo.insert(bb, u);
            return u;
        }
        if preds.len() == 1 {
            // No join: forward through the single predecessor. Memoize
            // *after* the recursive call; single-pred chains cannot cycle
            // back into themselves without passing a multi-pred block.
            let v = self.read_at_end(preds[0], def_val, def_block, ty, cfg, memo);
            memo.insert(bb, v);
            return v;
        }
        // Join point: place a placeholder phi first to break cycles.
        let (phi_id, phi_val) = self.nf.insert_inst(
            &self.m.types,
            bb,
            0,
            Instruction {
                op: Opcode::Phi,
                ty,
                operands: vec![],
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: bb,
                result: None,
            },
        );
        let phi_val = phi_val.expect("phi value");
        memo.insert(bb, phi_val);
        let vals: Vec<ValueId> = preds
            .iter()
            .map(|&p| self.read_at_end(p, def_val, def_block, ty, cfg, memo))
            .collect();
        let phi = self.nf.inst_mut(phi_id);
        phi.operands = vals;
        phi.blocks = preds;
        phi_val
    }

    /// The reaching value of `def` at the entry of `bb` (for a use inside
    /// `bb` that the definition does not dominate).
    #[allow(clippy::too_many_arguments)]
    fn read_at_entry(
        &mut self,
        bb: BlockId,
        def_val: ValueId,
        def_block: BlockId,
        ty: TypeId,
        cfg: &Cfg,
        memo: &mut HashMap<BlockId, ValueId>,
    ) -> ValueId {
        // Entry value equals the end value of the same block whenever the
        // def is not in `bb`, which `reconstruct_ssa` asserts.
        self.read_at_end(bb, def_val, def_block, ty, cfg, memo)
    }

    /// Demotes `def`'s value to a stack slot, rewriting the given uses to
    /// loads. Implements the Section III-E store-placement rules.
    fn demote(&mut self, def: InstId, uses: &[UseSite]) {
        self.demotions += 1;
        let def_val = self.nf.inst(def).result.expect("demoting a valued instruction");
        let slot_ty = self.nf.value(def_val).ty;
        // Slot in the entry block (dominates everything).
        let entry = self.nf.entry();
        let (_, slot) = self.nf.insert_inst(
            &self.m.types,
            entry,
            0,
            Instruction {
                op: Opcode::Alloca,
                ty: self.ptr_ty,
                operands: vec![],
                blocks: vec![],
                pred: None,
                aux_ty: Some(slot_ty),
                parent: entry,
                result: None,
            },
        );
        let slot = slot.expect("alloca value");

        // Store placement.
        let def_block = self.nf.inst(def).parent;
        let (store_block, store_pos) = match self.cfg.repair {
            RepairMode::LegacyBuggy => {
                // Bug #1: store at the end of the block (before the
                // terminator), even when the definition is a phi followed
                // by other phis and uses within the block.
                (def_block, self.nf.block(def_block).insts.len() - 1)
            }
            RepairMode::Phi | RepairMode::Stack => {
                let def_inst = self.nf.inst(def);
                if def_inst.op == Opcode::Phi {
                    // Fix #1: first legal point after the definition — after
                    // the whole phi group.
                    (def_block, self.nf.first_non_phi(def_block))
                } else if def_inst.is_terminator() {
                    // Invoke: the first legal point is in the normal
                    // successor, after its phis (fix #2 applies only to
                    // phi uses, which never violate dominance here).
                    let normal = def_inst.blocks[0];
                    (normal, self.nf.first_non_phi(normal))
                } else {
                    let pos = self
                        .nf
                        .block(def_block)
                        .insts
                        .iter()
                        .position(|&i| i == def)
                        .expect("def in its block");
                    (def_block, pos + 1)
                }
            }
        };
        self.nf.insert_inst(
            &self.m.types,
            store_block,
            store_pos,
            Instruction {
                op: Opcode::Store,
                ty: self.void_ty,
                operands: vec![def_val, slot],
                blocks: vec![],
                pred: None,
                aux_ty: None,
                parent: store_block,
                result: None,
            },
        );

        // Rewrite uses.
        let mut sites: Vec<UseSite> = uses.to_vec();
        if self.cfg.repair == RepairMode::LegacyBuggy {
            // Legacy HyFM also rewrote non-violating uses inside the
            // defining block — those now load *before* the store runs.
            for (iid, inst) in self.nf.block_insts(def_block) {
                if inst.op == Opcode::Store && inst.operands == vec![def_val, slot] {
                    continue;
                }
                for (slot_idx, &op) in inst.operands.iter().enumerate() {
                    if op == def_val && inst.op != Opcode::Phi {
                        sites.push(UseSite::Operand { inst: iid, slot: slot_idx });
                    }
                }
            }
            sites.sort();
            sites.dedup();
        }
        for site in sites {
            match site {
                UseSite::Operand { inst, slot: slot_idx } => {
                    let bb = self.nf.inst(inst).parent;
                    let pos = self
                        .nf
                        .block(bb)
                        .insts
                        .iter()
                        .position(|&i| i == inst)
                        .expect("use in its block");
                    let (_, load) = self.nf.insert_inst(
                        &self.m.types,
                        bb,
                        pos,
                        Instruction {
                            op: Opcode::Load,
                            ty: slot_ty,
                            operands: vec![slot],
                            blocks: vec![],
                            pred: None,
                            aux_ty: None,
                            parent: bb,
                            result: None,
                        },
                    );
                    self.nf.inst_mut(inst).operands[slot_idx] = load.expect("load value");
                }
                UseSite::PhiIncoming { inst, slot: slot_idx, block } => {
                    // Load at the end of the incoming block.
                    let pos = self.nf.block(block).insts.len() - 1;
                    let (_, load) = self.nf.insert_inst(
                        &self.m.types,
                        block,
                        pos,
                        Instruction {
                            op: Opcode::Load,
                            ty: slot_ty,
                            operands: vec![slot],
                            blocks: vec![],
                            pred: None,
                            aux_ty: None,
                            parent: block,
                            result: None,
                        },
                    );
                    self.nf.inst_mut(inst).operands[slot_idx] = load.expect("load value");
                }
            }
        }
    }
}

/// A use of a value that violates SSA dominance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum UseSite {
    /// Ordinary operand `slot` of `inst`.
    Operand { inst: InstId, slot: usize },
    /// Incoming `slot` of phi `inst` arriving from `block`.
    PhiIncoming { inst: InstId, slot: usize, block: BlockId },
}

/// Scans a function for SSA dominance violations.
fn find_violations(f: &Function) -> Vec<(InstId, UseSite)> {
    let cfg = Cfg::compute(f);
    let dt = DomTree::compute(f, &cfg);
    let mut out = Vec::new();
    for &bb in &f.block_order {
        if !cfg.is_reachable(bb) {
            continue;
        }
        for (iid, inst) in f.block_insts(bb) {
            if inst.op == Opcode::Phi {
                for (slot, (in_bb, v)) in inst.phi_incomings().enumerate() {
                    if let ValueKind::Inst(def) = f.value(v).kind {
                        if !dt.dominates_phi_use(f, def, in_bb) {
                            out.push((
                                def,
                                UseSite::PhiIncoming { inst: iid, slot, block: in_bb },
                            ));
                        }
                    }
                }
            } else {
                for (slot, &v) in inst.operands.iter().enumerate() {
                    if let ValueKind::Inst(def) = f.value(v).kind {
                        if !dt.dominates_inst(f, def, iid) {
                            out.push((def, UseSite::Operand { inst: iid, slot }));
                        }
                    }
                }
            }
        }
    }
    out
}

fn incoming_of(f: &Function, phi: InstId, pred: BlockId) -> Result<ValueId, MergeError> {
    f.inst(phi)
        .phi_incomings()
        .find(|(bb, _)| *bb == pred)
        .map(|(_, v)| v)
        .ok_or_else(|| {
            MergeError::Internal(format!("phi {phi:?} has no incoming for {pred:?}"))
        })
}

fn resolve_side(
    m: &Module,
    orig: &Function,
    nf: &mut Function,
    map: &HashMap<ValueId, ValueId>,
    param_map: &[usize],
    ptr_ty: TypeId,
    v: ValueId,
) -> ValueId {
    let val = orig.value(v);
    match val.kind {
        ValueKind::Arg(i) => nf.arg(param_map[i as usize]),
        ValueKind::Inst(_) => *map
            .get(&v)
            .unwrap_or_else(|| panic!("unmapped instruction value {v:?}")),
        ValueKind::ConstInt(x) => nf.const_int(&m.types, val.ty, x),
        ValueKind::ConstFloat(bits) => nf.const_float(val.ty, f64::from_bits(bits)),
        ValueKind::Undef => nf.undef(val.ty),
        ValueKind::FuncRef(f) => nf.func_ref(f, ptr_ty),
        ValueKind::GlobalRef(g) => nf.global_ref(g, ptr_ty),
    }
}

/// True if every reference to `f` in the module is the callee of a direct
/// `call`/`invoke` — i.e. the function's address is never taken, so all
/// call sites can be redirected and (for internal linkage) the body
/// dropped entirely instead of thunked.
pub fn only_directly_called(m: &Module, f: FuncId) -> bool {
    for (_, func) in m.functions() {
        if func.is_declaration {
            continue;
        }
        for (_, inst) in func.linked_insts() {
            for (slot, &op) in inst.operands.iter().enumerate() {
                if let ValueKind::FuncRef(target) = func.value(op).kind {
                    if target != f {
                        continue;
                    }
                    let is_callee = slot == 0
                        && matches!(inst.op, Opcode::Call | Opcode::Invoke);
                    if !is_callee {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Rewrites every direct call to `target` across the module into a call of
/// `merged`, passing the function identifier and remapping arguments
/// through `param_map` (unshared merged parameters receive `undef`).
///
/// References in non-callee positions (address-taken uses) are left alone;
/// such functions must keep a thunk.
pub fn redirect_calls(
    m: &mut Module,
    target: FuncId,
    merged: FuncId,
    fid_value: bool,
    param_map: &[usize],
) {
    let mut scratch = TypeStore::new();
    let ptr_ty = scratch.ptr();
    let bool_ty = scratch.bool();
    let merged_params = m.function(merged).params.clone();
    let func_ids: Vec<FuncId> = m.functions().map(|(id, _)| id).collect();
    for fid in func_ids {
        if m.function(fid).is_declaration {
            continue;
        }
        let call_sites: Vec<InstId> = m
            .function(fid)
            .linked_insts()
            .filter(|(_, inst)| {
                matches!(inst.op, Opcode::Call | Opcode::Invoke)
                    && inst.operands.first().is_some_and(|&c| {
                        matches!(
                            m.function(fid).value(c).kind,
                            ValueKind::FuncRef(t) if t == target
                        )
                    })
            })
            .map(|(iid, _)| iid)
            .collect();
        if call_sites.is_empty() {
            continue;
        }
        for site in call_sites {
            let old_args: Vec<ValueId> =
                m.function(fid).inst(site).operands[1..].to_vec();
            let (f, types) = m.func_mut_and_types(fid);
            let callee = f.func_ref(merged, ptr_ty);
            let fid_const = f.const_int(types, bool_ty, i64::from(fid_value));
            let mut new_ops = vec![callee, fid_const];
            for (slot, &ty) in merged_params.iter().enumerate().skip(1) {
                match param_map.iter().position(|&s| s == slot) {
                    Some(orig_idx) => new_ops.push(old_args[orig_idx]),
                    None => {
                        let u = f.undef(ty);
                        new_ops.push(u);
                    }
                }
            }
            f.inst_mut(site).operands = new_ops;
        }
    }
}

/// Builds the thunk that redirects `orig` into `merged`.
///
/// The thunk keeps `orig`'s exact signature and linkage: it passes the
/// function identifier (`fid_value`) plus its own arguments mapped through
/// `param_map`, filling unshared merged parameters with `undef`.
pub fn build_thunk(
    m: &Module,
    orig: FuncId,
    merged: FuncId,
    fid_value: bool,
    param_map: &[usize],
) -> Function {
    let of = m.function(orig);
    let mf = m.function(merged);
    let mut scratch = TypeStore::new();
    let ptr_ty = scratch.ptr();
    let void_ty = scratch.void();
    let bool_ty = scratch.bool();

    let mut t = Function::new(of.name.clone(), of.params.clone(), of.ret_ty);
    t.linkage = of.linkage;
    let bb = t.add_block("entry");
    let callee = t.func_ref(merged, ptr_ty);
    let fid = t.const_int(&m.types, bool_ty, i64::from(fid_value));
    let mut args: Vec<ValueId> = Vec::with_capacity(mf.params.len());
    args.push(fid);
    for (slot, &ty) in mf.params.iter().enumerate().skip(1) {
        match param_map.iter().position(|&s| s == slot) {
            Some(orig_idx) => args.push(t.arg(orig_idx)),
            None => {
                let u = t.undef(ty);
                args.push(u);
            }
        }
    }
    let mut call_ops = vec![callee];
    call_ops.extend(args);
    let (_, ret_val) = t.append_inst(
        &m.types,
        bb,
        Instruction {
            op: Opcode::Call,
            ty: of.ret_ty,
            operands: call_ops,
            blocks: vec![],
            pred: None,
            aux_ty: None,
            parent: bb,
            result: None,
        },
    );
    t.append_inst(
        &m.types,
        bb,
        Instruction {
            op: Opcode::Ret,
            ty: void_ty,
            operands: ret_val.into_iter().collect(),
            blocks: vec![],
            pred: None,
            aux_ty: None,
            parent: bb,
            result: None,
        },
    );
    t
}
