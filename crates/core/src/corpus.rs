//! Corpus-level candidate search: the resident, incrementally-updated
//! state behind the `f3m-serve` daemon.
//!
//! A [`Corpus`] holds every ingested module plus one fingerprint entry per
//! merge-eligible function (definitions with at least one linked
//! instruction — the same filter [`run_pass`] applies), indexed in a
//! [`ShardedLshIndex`]. Ingesting a module fingerprints *only* that
//! module's functions and inserts them; evicting removes the module's
//! band keys. Neither ever rebuilds the index.
//!
//! ## Namespacing
//!
//! Different translation units freely reuse symbol names (every generated
//! workload has an `f0_0` and a `__driver`), so corpus-level identity is
//! the *qualified* name `<module>.<function>` — `.` because the IR symbol
//! lexer accepts only `[A-Za-z0-9_.]`. Call sites reference callees
//! through `FuncId`s, never names, so qualifying is a pure rename
//! ([`Module::rename_function`]) and instruction encodings — and hence
//! fingerprints — are unchanged. [`combine_modules`] builds the merged
//! corpus module the `merge` request runs the full pass over.
//!
//! ## Epochs and visibility
//!
//! Mutations are serialized (one writer at a time); each bumps the index
//! epoch *after* completing, and every entry records the epoch interval
//! `[added, evicted)` in which it is visible. A reader pins
//! [`ShardedLshIndex::epoch`] once and filters candidates against that
//! pin, so an in-flight ingest is either fully visible or not at all.
//! Eviction additionally removes band keys physically (cost proportional
//! to the module's own keys); removal is visible to queries immediately,
//! which only ever *hides* candidates early — never resurfaces stale
//! ones.

use std::collections::{HashMap, HashSet};
use std::sync::{Mutex, RwLock};

use f3m_fingerprint::adaptive::MergeParams;
use f3m_fingerprint::encode::encode_function;
use f3m_fingerprint::fnv::xor_constants;
use f3m_fingerprint::lsh::band_keys_for;
use f3m_fingerprint::minhash::MinHashFingerprint;
use f3m_fingerprint::par::par_map_indexed;
use f3m_fingerprint::sharded::{ShardStats, ShardedLshIndex};
use f3m_ir::module::Module;
use f3m_ir::printer::print_function;

use crate::pass::{run_pass, MergeReport, PassConfig};

/// Configuration of a [`Corpus`].
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Fingerprint/LSH parameters shared by every entry. Fixed for the
    /// corpus lifetime: changing `k` or the banding would invalidate every
    /// resident fingerprint.
    pub params: MergeParams,
    /// Number of index shards.
    pub shards: usize,
    /// Worker threads for per-module fingerprinting at ingest.
    pub jobs: usize,
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig { params: MergeParams::static_default(), shards: 8, jobs: 1 }
    }
}

/// What `ingest` did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestSummary {
    /// Module name as registered (the qualification prefix).
    pub module: String,
    /// Merge-eligible functions fingerprinted and indexed.
    pub functions: usize,
    /// Definitions skipped (no linked instructions).
    pub skipped: usize,
    /// Epoch at which the module became visible.
    pub epoch: u64,
}

/// What `evict` did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvictSummary {
    pub module: String,
    /// Entries removed from the index.
    pub functions: usize,
    /// Epoch at which the module stopped being visible.
    pub epoch: u64,
}

/// One ranked candidate of a query.
#[derive(Clone, Debug, PartialEq)]
pub struct RankedCandidate {
    /// Qualified name of the candidate function.
    pub func: String,
    /// Estimated Jaccard similarity to the queried function.
    pub similarity: f64,
}

/// Top-k candidates of one queried function.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResult {
    /// Qualified name of the queried function.
    pub func: String,
    /// Candidates, best first (similarity descending, entry order
    /// ascending on ties — the [`CandidateSearch`] tie-break rule).
    ///
    /// [`CandidateSearch`]: crate::rank::CandidateSearch
    pub candidates: Vec<RankedCandidate>,
}

/// A point-in-time corpus/index snapshot for `stats` responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusStats {
    /// Epoch visible to readers when the snapshot was taken.
    pub epoch: u64,
    /// Modules currently visible.
    pub modules_live: usize,
    /// Modules ever ingested (live + evicted).
    pub modules_total: usize,
    /// Function entries currently visible.
    pub functions_live: usize,
    /// Function entries ever created.
    pub entries_total: usize,
    /// Non-empty buckets across all shards.
    pub index_buckets: usize,
    /// Fullest bucket across all shards.
    pub index_max_bucket: usize,
    /// Per-shard occupancy, in shard order.
    pub shards: Vec<ShardStats>,
}

struct Entry {
    /// Original (unqualified) function name.
    func: String,
    /// `<module>.<func>`, the corpus-wide identity.
    qualified: String,
    fp: MinHashFingerprint,
    keys: Vec<u64>,
    /// First epoch at which this entry is visible.
    added: u64,
    /// First epoch at which it is no longer visible (`u64::MAX` = live).
    evicted: u64,
}

struct ModuleRecord {
    name: String,
    /// The module as ingested (unqualified names).
    module: Module,
    entry_ids: Vec<usize>,
    live: bool,
}

#[derive(Default)]
struct Table {
    entries: Vec<Entry>,
    modules: Vec<ModuleRecord>,
}

/// The resident corpus: ingested modules + sharded fingerprint index.
///
/// All operations take `&self`; reads proceed concurrently, mutations
/// serialize on an internal lock. See the module docs for the visibility
/// model.
pub struct Corpus {
    cfg: CorpusConfig,
    consts: Vec<u64>,
    index: ShardedLshIndex<usize>,
    table: RwLock<Table>,
    /// Serializes ingest/evict so epoch intervals never interleave.
    mutate: Mutex<()>,
}

/// True if `s` is non-empty and lexable as an IR symbol (`@name`), i.e.
/// usable as a module/qualification prefix.
pub fn symbol_safe(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.')
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new(cfg: CorpusConfig) -> Corpus {
        let consts = xor_constants(cfg.params.k);
        let index = ShardedLshIndex::new(cfg.params.lsh, cfg.shards);
        Corpus { cfg, consts, index, table: RwLock::new(Table::default()), mutate: Mutex::new(()) }
    }

    pub fn config(&self) -> &CorpusConfig {
        &self.cfg
    }

    /// The epoch currently visible to readers.
    pub fn epoch(&self) -> u64 {
        self.index.epoch()
    }

    /// Registers `m` under its own `name`, fingerprints its
    /// merge-eligible functions (in parallel for `jobs > 1`) and indexes
    /// them. No existing entry is touched — cost is proportional to the
    /// new module alone.
    pub fn ingest(&self, m: Module) -> Result<IngestSummary, String> {
        let name = m.name.clone();
        if !symbol_safe(&name) {
            return Err(format!(
                "module name `{name}` is not usable as a symbol prefix \
                 (allowed: A-Z a-z 0-9 _ .)"
            ));
        }
        let defined = m.defined_functions();
        let funcs: Vec<_> =
            defined.iter().copied().filter(|&f| m.function(f).num_linked_insts() > 0).collect();
        let skipped = defined.len() - funcs.len();
        let consts = &self.consts;
        let per_func = par_map_indexed(funcs.len(), self.cfg.jobs.max(1), |i| {
            let enc = encode_function(&m.types, m.function(funcs[i]));
            let fp = MinHashFingerprint::of_encoded_with(consts, &enc);
            let keys = band_keys_for(self.cfg.params.lsh, &fp);
            (fp, keys)
        });

        let _writer = self.mutate.lock().unwrap();
        let next_epoch = self.index.epoch() + 1;
        let inserted: Vec<(usize, Vec<u64>)> = {
            let mut t = self.table.write().unwrap();
            if t.modules.iter().any(|r| r.live && r.name == name) {
                return Err(format!("module `{name}` is already ingested (evict it first)"));
            }
            let live_qualified: HashSet<&str> = t
                .entries
                .iter()
                .filter(|e| e.evicted == u64::MAX)
                .map(|e| e.qualified.as_str())
                .collect();
            for &f in &funcs {
                let q = format!("{name}.{}", m.function(f).name);
                if live_qualified.contains(q.as_str()) {
                    return Err(format!("qualified name `{q}` collides with a resident function"));
                }
            }
            let mut entry_ids = Vec::with_capacity(funcs.len());
            let mut inserted = Vec::with_capacity(funcs.len());
            for (&f, (fp, keys)) in funcs.iter().zip(per_func) {
                let id = t.entries.len();
                let func = m.function(f).name.clone();
                t.entries.push(Entry {
                    qualified: format!("{name}.{func}"),
                    func,
                    fp,
                    keys: keys.clone(),
                    added: next_epoch,
                    evicted: u64::MAX,
                });
                entry_ids.push(id);
                inserted.push((id, keys));
            }
            t.modules.push(ModuleRecord { name: name.clone(), module: m, entry_ids, live: true });
            inserted
        };
        for (id, keys) in &inserted {
            self.index.insert_with_keys(*id, keys);
        }
        let epoch = self.index.advance_epoch();
        debug_assert_eq!(epoch, next_epoch);
        Ok(IngestSummary { module: name, functions: inserted.len(), skipped, epoch })
    }

    /// Removes module `name` from the corpus: marks its entries evicted
    /// and deletes their band keys from the index. Cost is proportional
    /// to the module's own entries — the index is never rebuilt.
    pub fn evict(&self, name: &str) -> Result<EvictSummary, String> {
        let _writer = self.mutate.lock().unwrap();
        let next_epoch = self.index.epoch() + 1;
        let removed: Vec<(usize, Vec<u64>)> = {
            let mut t = self.table.write().unwrap();
            let Some(mi) = t.modules.iter().position(|r| r.live && r.name == name) else {
                return Err(format!("module `{name}` is not resident"));
            };
            t.modules[mi].live = false;
            let ids = t.modules[mi].entry_ids.clone();
            ids.iter()
                .map(|&id| {
                    let e = &mut t.entries[id];
                    e.evicted = next_epoch;
                    (id, e.keys.clone())
                })
                .collect()
        };
        for (id, keys) in &removed {
            self.index.remove_with_keys(*id, keys);
        }
        let epoch = self.index.advance_epoch();
        debug_assert_eq!(epoch, next_epoch);
        Ok(EvictSummary { module: name.to_string(), functions: removed.len(), epoch })
    }

    /// Top-`k` resident candidates for one function, by qualified
    /// identity (`module` + unqualified `func` name).
    pub fn query_function(
        &self,
        module: &str,
        func: &str,
        k: usize,
    ) -> Result<(u64, QueryResult), String> {
        let epoch = self.index.epoch();
        let t = self.table.read().unwrap();
        let rec = Self::live_module(&t, module)?;
        let Some(&id) = rec.entry_ids.iter().find(|&&id| t.entries[id].func == func) else {
            return Err(format!("module `{module}` has no merge-eligible function `{func}`"));
        };
        Ok((epoch, self.ranked(&t, id, epoch, k)))
    }

    /// Top-`k` resident candidates for every merge-eligible function of
    /// `module`, in function order.
    pub fn query_module(&self, module: &str, k: usize) -> Result<(u64, Vec<QueryResult>), String> {
        let epoch = self.index.epoch();
        let t = self.table.read().unwrap();
        let rec = Self::live_module(&t, module)?;
        let results =
            rec.entry_ids.iter().map(|&id| self.ranked(&t, id, epoch, k)).collect();
        Ok((epoch, results))
    }

    fn live_module<'t>(t: &'t Table, name: &str) -> Result<&'t ModuleRecord, String> {
        t.modules
            .iter()
            .find(|r| r.live && r.name == name)
            .ok_or_else(|| format!("module `{name}` is not resident"))
    }

    /// Ranks the candidates of entry `i` visible at `epoch`: probe the
    /// sharded index, filter by epoch interval and similarity threshold,
    /// order by similarity descending / entry order ascending. This is
    /// the same rule as `CandidateSearch::ranked_candidates`, so daemon
    /// queries agree with the offline seam over [`combine_modules`].
    fn ranked(&self, t: &Table, i: usize, epoch: u64, k: usize) -> QueryResult {
        let ent = &t.entries[i];
        let (cands, _) = self.index.candidates_counted(&ent.keys, i);
        let mut ranked: Vec<(usize, f64)> = cands
            .into_iter()
            .filter(|&j| {
                let e = &t.entries[j];
                e.added <= epoch && epoch < e.evicted
            })
            .map(|j| (j, ent.fp.similarity(&t.entries[j].fp)))
            .filter(|&(_, sim)| sim >= self.cfg.params.threshold)
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        QueryResult {
            func: ent.qualified.clone(),
            candidates: ranked
                .into_iter()
                .map(|(j, similarity)| RankedCandidate {
                    func: t.entries[j].qualified.clone(),
                    similarity,
                })
                .collect(),
        }
    }

    /// Snapshot of corpus and index occupancy.
    pub fn stats(&self) -> CorpusStats {
        let epoch = self.index.epoch();
        let t = self.table.read().unwrap();
        CorpusStats {
            epoch,
            modules_live: t.modules.iter().filter(|r| r.live).count(),
            modules_total: t.modules.len(),
            functions_live: t.entries.iter().filter(|e| e.evicted == u64::MAX).count(),
            entries_total: t.entries.len(),
            index_buckets: self.index.num_buckets(),
            index_max_bucket: self.index.max_bucket_size(),
            shards: self.index.shard_stats(),
        }
    }

    /// The combined module over all live modules, in ingest order, with
    /// every definition under its qualified name (see [`combine_modules`]).
    pub fn combined_module(&self) -> Result<Module, String> {
        let t = self.table.read().unwrap();
        let live: Vec<&Module> =
            t.modules.iter().filter(|r| r.live).map(|r| &r.module).collect();
        combine_modules(&live)
    }

    /// Runs the full merging pass over the combined resident corpus and
    /// returns the report together with the merged module. The resident
    /// state is untouched — the pass mutates a freshly combined copy.
    pub fn merge(&self, config: &PassConfig) -> Result<(MergeReport, Module), String> {
        let mut m = self.combined_module()?;
        let report = run_pass(&mut m, config);
        Ok((report, m))
    }
}

/// Combines modules into one, qualifying every definition as
/// `<module>.<function>` and deduplicating shared globals and external
/// declarations by name. A declaration is dropped when any module
/// *defines* that exact symbol; conflicting duplicate globals or
/// declarations (same name, different shape) are errors, as are
/// qualified-name collisions.
///
/// The combination goes through print + parse: each renamed module is
/// rendered to IR text, the pieces are concatenated, and the result is
/// parsed (and therefore verified) as a single module. That keeps the
/// type stores correctly re-interned without any cross-module id
/// surgery.
pub fn combine_modules(mods: &[&Module]) -> Result<Module, String> {
    let mut global_lines: Vec<String> = Vec::new();
    let mut global_by_name: HashMap<String, String> = HashMap::new();
    let mut declare_lines: Vec<(String, String)> = Vec::new();
    let mut declare_by_name: HashMap<String, String> = HashMap::new();
    let mut defined: HashSet<String> = HashSet::new();
    let mut bodies = String::new();

    for &m in mods {
        if !symbol_safe(&m.name) {
            return Err(format!("module name `{}` is not a valid symbol prefix", m.name));
        }
        let mut ns = m.clone();
        for id in ns.defined_functions() {
            let q = format!("{}.{}", m.name, ns.function(id).name);
            if ns.lookup_function(&q).is_some() {
                return Err(format!("qualified name `{q}` collides inside module `{}`", m.name));
            }
            ns.rename_function(id, q);
        }
        for (_, g) in ns.globals() {
            let bytes: Vec<String> = g.init.iter().map(|b| b.to_string()).collect();
            let line = format!(
                "global @{} : {} = [{}]",
                g.name,
                ns.types.display(g.ty),
                bytes.join(", ")
            );
            match global_by_name.get(&g.name) {
                None => {
                    global_by_name.insert(g.name.clone(), line.clone());
                    global_lines.push(line);
                }
                Some(prev) if *prev == line => {}
                Some(_) => {
                    return Err(format!(
                        "global `@{}` redefined with a different type or initializer",
                        g.name
                    ))
                }
            }
        }
        for (id, f) in ns.functions() {
            if f.is_declaration {
                let params: Vec<String> =
                    f.params.iter().map(|&p| ns.types.display(p)).collect();
                let line = format!(
                    "declare @{}({}) -> {}",
                    f.name,
                    params.join(", "),
                    ns.types.display(f.ret_ty)
                );
                match declare_by_name.get(&f.name) {
                    None => {
                        declare_by_name.insert(f.name.clone(), line.clone());
                        declare_lines.push((f.name.clone(), line));
                    }
                    Some(prev) if *prev == line => {}
                    Some(_) => {
                        return Err(format!(
                            "external `@{}` declared with conflicting signatures",
                            f.name
                        ))
                    }
                }
            } else {
                if !defined.insert(f.name.clone()) {
                    return Err(format!("qualified name `{}` defined twice", f.name));
                }
                bodies.push_str(&print_function(&ns, id));
                bodies.push('\n');
            }
        }
    }

    let mut text = String::from("module \"corpus\" {\n");
    for line in &global_lines {
        text.push_str(line);
        text.push('\n');
    }
    if !global_lines.is_empty() {
        text.push('\n');
    }
    for (name, line) in &declare_lines {
        if !defined.contains(name) {
            text.push_str(line);
            text.push('\n');
        }
    }
    text.push_str(&bodies);
    text.push_str("}\n");
    f3m_ir::parser::parse_module(&text).map_err(|e| format!("combine: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::{CandidateSearch, LshMinHashSearch};
    use f3m_ir::ids::FuncId;

    fn workload(name: &str, seed: u64) -> Module {
        let mut spec = f3m_workloads::mini_suite()[0].clone();
        spec.functions = 24;
        spec.seed = seed;
        let mut m = f3m_workloads::build_module(&spec);
        m.name = name.to_string();
        m
    }

    fn corpus() -> Corpus {
        Corpus::new(CorpusConfig { shards: 4, jobs: 2, ..CorpusConfig::default() })
    }

    #[test]
    fn ingest_query_matches_offline_seam_on_combined_module() {
        let c = corpus();
        let m1 = workload("alpha", 11);
        let m2 = workload("beta", 22);
        c.ingest(m1.clone()).unwrap();
        c.ingest(m2.clone()).unwrap();

        // Offline: the seam over the combined module.
        let combined = combine_modules(&[&m1, &m2]).unwrap();
        let funcs: Vec<FuncId> = combined
            .defined_functions()
            .into_iter()
            .filter(|&f| combined.function(f).num_linked_insts() > 0)
            .collect();
        let search = LshMinHashSearch::build(
            &combined,
            &funcs,
            MergeParams::static_default(),
            1,
        );
        let available = vec![true; funcs.len()];

        let (_, results) = c.query_module("alpha", 5).unwrap();
        assert!(!results.is_empty());
        let mut nonempty = 0;
        for (i, r) in results.iter().enumerate() {
            let offline = search.ranked_candidates(i, &available, 5);
            let offline_names: Vec<(String, f64)> = offline
                .into_iter()
                .map(|(j, s)| (combined.function(funcs[j]).name.clone(), s))
                .collect();
            let daemon_names: Vec<(String, f64)> =
                r.candidates.iter().map(|c| (c.func.clone(), c.similarity)).collect();
            assert_eq!(daemon_names, offline_names, "function {} ({})", i, r.func);
            nonempty += usize::from(!r.candidates.is_empty());
        }
        assert!(nonempty > 0, "workload families must produce candidates");
    }

    #[test]
    fn evict_hides_candidates_without_rebuild() {
        let c = corpus();
        c.ingest(workload("alpha", 11)).unwrap();
        c.ingest(workload("beta", 11)).unwrap(); // same seed: cross-module twins
        let (_, before) = c.query_module("alpha", 10).unwrap();
        assert!(before
            .iter()
            .any(|r| r.candidates.iter().any(|cand| cand.func.starts_with("beta."))));

        let before_stats = c.stats();
        let summary = c.evict("beta").unwrap();
        assert!(summary.functions > 0);
        let after_stats = c.stats();
        assert_eq!(after_stats.epoch, before_stats.epoch + 1);
        assert_eq!(after_stats.modules_live, 1);
        assert_eq!(after_stats.modules_total, 2);
        assert!(after_stats.functions_live < before_stats.functions_live);

        let (_, after) = c.query_module("alpha", 10).unwrap();
        for r in &after {
            assert!(
                r.candidates.iter().all(|cand| cand.func.starts_with("alpha.")),
                "evicted module still surfaced: {r:?}"
            );
        }
        // The name is free again.
        c.ingest(workload("beta", 33)).unwrap();
        assert_eq!(c.stats().modules_live, 2);
    }

    #[test]
    fn duplicate_module_and_bad_names_are_rejected() {
        let c = corpus();
        c.ingest(workload("alpha", 1)).unwrap();
        assert!(c.ingest(workload("alpha", 2)).unwrap_err().contains("already ingested"));
        assert!(c.ingest(workload("no spaces", 3)).unwrap_err().contains("symbol prefix"));
        assert!(c.evict("ghost").unwrap_err().contains("not resident"));
        assert!(c.query_module("ghost", 1).is_err());
        assert!(c.query_function("alpha", "nosuch", 1).is_err());
    }

    #[test]
    fn merge_runs_over_combined_corpus() {
        let c = corpus();
        c.ingest(workload("alpha", 5)).unwrap();
        c.ingest(workload("beta", 5)).unwrap();
        let (report, merged) = c.merge(&PassConfig::f3m()).unwrap();
        assert!(report.stats.merges_committed > 0, "twin modules must merge");
        assert!(merged.lookup_function("alpha.__driver").is_some());
        assert!(merged.lookup_function("beta.__driver").is_some());
        // Resident state is untouched by the pass.
        assert_eq!(c.stats().modules_live, 2);
    }

    #[test]
    fn combine_rejects_conflicting_globals() {
        let mut a = Module::new("a");
        let i32t = a.types.int(32);
        a.add_global(f3m_ir::module::Global { name: "g".into(), ty: i32t, init: vec![1] });
        let mut b = Module::new("b");
        let i32t_b = b.types.int(32);
        b.add_global(f3m_ir::module::Global { name: "g".into(), ty: i32t_b, init: vec![2] });
        let err = combine_modules(&[&a, &b]).unwrap_err();
        assert!(err.contains("different type or initializer"), "{err}");
        // Identical globals deduplicate fine.
        let mut b2 = Module::new("b2");
        let i32t_b2 = b2.types.int(32);
        b2.add_global(f3m_ir::module::Global { name: "g".into(), ty: i32t_b2, init: vec![1] });
        let combined = combine_modules(&[&a, &b2]).unwrap();
        assert_eq!(combined.num_globals(), 1);
    }
}
