//! Corpus-level candidate search: the resident, incrementally-updated
//! state behind the `f3m-serve` daemon.
//!
//! A [`Corpus`] holds every ingested module plus one fingerprint entry per
//! merge-eligible function (definitions with at least one linked
//! instruction — the same filter [`run_pass`] applies), indexed in a
//! [`ShardedLshIndex`]. Ingesting a module fingerprints *only* that
//! module's functions and inserts them; evicting removes the module's
//! band keys. Neither ever rebuilds the index.
//!
//! ## Namespacing
//!
//! Different translation units freely reuse symbol names (every generated
//! workload has an `f0_0` and a `__driver`), so corpus-level identity is
//! the *qualified* name `<module>.<function>` — `.` because the IR symbol
//! lexer accepts only `[A-Za-z0-9_.]`. Call sites reference callees
//! through `FuncId`s, never names, so qualifying is a pure rename
//! ([`Module::rename_function`]) and instruction encodings — and hence
//! fingerprints — are unchanged. [`combine_modules`] builds the merged
//! corpus module the `merge` request runs the full pass over.
//!
//! ## Epochs and visibility
//!
//! Mutations are serialized (one writer at a time); each bumps the index
//! epoch *after* completing, and every entry records the epoch interval
//! `[added, evicted)` in which it is visible. A reader pins
//! [`ShardedLshIndex::epoch`] once and filters candidates against that
//! pin, so an in-flight ingest is either fully visible or not at all.
//! Eviction additionally removes band keys physically (cost proportional
//! to the module's own keys); removal is visible to queries immediately,
//! which only ever *hides* candidates early — never resurfaces stale
//! ones.
//!
//! ## Incremental recompute (revisions + memoized ranks)
//!
//! The epoch counter doubles as the corpus **revision**: every entry
//! carries `rev` (the revision at which its fingerprint and band keys
//! were computed — bumped by [`Corpus::update_function`]) and
//! `dirty_rev` (the revision at which its *memoized ranked candidates*
//! were last invalidated). Ranked-candidate queries are memoized in a
//! [`QueryCache`]: a cached list computed under pinned epoch `P` is
//! valid for a query pinned at `E` iff `dirty_rev ≤ min(P, E)` — i.e. no
//! mutation has touched the entry's band-collision neighborhood since
//! before either pin. Durable inputs (function bodies, [`MergeParams`])
//! invalidate through `dirty_rev`; volatile inputs (the epoch itself,
//! counters) never do — a query's result is a pure function of the
//! durable state visible at its pin.
//!
//! Invalidation granularity comes from
//! [`ShardedLshIndex::apply_delta`]: a mutation removes/inserts band
//! keys and gets back exactly the entries sharing a bucket with any
//! touched key (old or new) — the changed functions plus their
//! band-collision neighborhoods. Only those entries lose their memoized
//! ranks; everything else answers the next query from cache. The
//! [`CorpusStats`] counters `memo_hits`/`memo_misses`/`funcs_invalidated`
//! make this observable (and jobs-invariant: none depends on worker
//! count).
//!
//! ## Cancellation
//!
//! [`Corpus::query_module_cancellable`] pins an epoch, then releases and
//! re-acquires the table lock between per-function rankings, invoking a
//! supersession predicate each time. When a newer epoch supersedes the
//! pin mid-query the computation aborts with
//! [`QueryOutcome::Superseded`] (counted in `queries_superseded`)
//! instead of finishing a corpus-sized answer nobody can trust.
//! [`Corpus::query_module`] retries a few times and then falls back to a
//! lock-held consistent pass, so synchronous callers keep their
//! deterministic, never-superseded behaviour.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use std::path::Path;

use f3m_fingerprint::adaptive::MergeParams;
use f3m_fingerprint::backend::{backend_for, signature_similarity, FingerprintBackend};
use f3m_fingerprint::encode::encode_function;
use f3m_fingerprint::lsh::{band_keys_for, probe_keys_for, BandKey};
use f3m_fingerprint::pager::PagerKind;
use f3m_fingerprint::par::par_map_indexed;
use f3m_fingerprint::resident::{ResidencyCounters, ResidentStore, RowRef};
use f3m_fingerprint::sharded::{ShardStats, ShardedLshIndex};
use f3m_fingerprint::snapshot::{self, SnapshotError, SnapshotHeader};
use f3m_fingerprint::store::PackedFingerprintStore;
use f3m_ir::module::Module;
use f3m_ir::printer::print_function;

use crate::pass::{run_pass, MergeReport, PassConfig};

/// Configuration of a [`Corpus`].
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Fingerprint/LSH parameters shared by every entry. Fixed for the
    /// corpus lifetime: changing `k` or the banding would invalidate every
    /// resident fingerprint.
    pub params: MergeParams,
    /// Number of index shards.
    pub shards: usize,
    /// Worker threads for per-module fingerprinting at ingest.
    pub jobs: usize,
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig { params: MergeParams::static_default(), shards: 8, jobs: 1 }
    }
}

/// What `ingest` did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestSummary {
    /// Module name as registered (the qualification prefix).
    pub module: String,
    /// Merge-eligible functions fingerprinted and indexed.
    pub functions: usize,
    /// Definitions skipped (no linked instructions).
    pub skipped: usize,
    /// Epoch at which the module became visible.
    pub epoch: u64,
}

/// What `evict` did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvictSummary {
    pub module: String,
    /// Entries removed from the index.
    pub functions: usize,
    /// Epoch at which the module stopped being visible.
    pub epoch: u64,
}

/// What `update_function` (or a `touch`) did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateSummary {
    pub module: String,
    /// Unqualified name of the updated function.
    pub func: String,
    /// Epoch at which the new body became visible.
    pub epoch: u64,
    /// Whether the replacement body differed from the resident one
    /// (`false` for a pure `touch`, which only re-fingerprints).
    pub changed: bool,
    /// Surviving resident functions whose memoized ranks this mutation
    /// invalidated — the changed function plus its band-collision
    /// neighborhood, old and new.
    pub funcs_invalidated: u64,
}

/// Outcome of a cancellable module query.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutcome {
    /// The query ran to completion under its pinned epoch.
    Complete { epoch: u64, results: Vec<QueryResult> },
    /// A mutation superseded the pinned epoch mid-query; partial work
    /// was discarded. `epoch` is the epoch observed at abort time.
    Superseded { started: u64, epoch: u64 },
}

/// One ranked candidate of a query.
#[derive(Clone, Debug, PartialEq)]
pub struct RankedCandidate {
    /// Qualified name of the candidate function.
    pub func: String,
    /// Estimated Jaccard similarity to the queried function.
    pub similarity: f64,
}

/// Top-k candidates of one queried function.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResult {
    /// Qualified name of the queried function.
    pub func: String,
    /// Candidates, best first: similarity descending, qualified name
    /// ascending on ties. Name ties are rebuild-stable — a from-scratch
    /// corpus holding the same live functions ranks identically, no
    /// matter how internal entry ids were assigned.
    pub candidates: Vec<RankedCandidate>,
}

/// A corpus-global candidate pair drawn from the sharded index, endpoints
/// in canonical (lexicographic) order.
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalPair {
    /// Lexicographically smaller qualified endpoint.
    pub a: String,
    /// Lexicographically larger qualified endpoint.
    pub b: String,
    /// Estimated similarity (symmetric, so either endpoint's ranking
    /// reports the same value).
    pub similarity: f64,
    /// Whether the endpoints live in different resident modules.
    pub cross_module: bool,
}

/// A point-in-time corpus/index snapshot for `stats` responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusStats {
    /// Epoch visible to readers when the snapshot was taken.
    pub epoch: u64,
    /// Modules currently visible.
    pub modules_live: usize,
    /// Modules ever ingested (live + evicted).
    pub modules_total: usize,
    /// Function entries currently visible.
    pub functions_live: usize,
    /// Function entries ever created.
    pub entries_total: usize,
    /// Non-empty buckets across all shards.
    pub index_buckets: usize,
    /// Fullest bucket across all shards.
    pub index_max_bucket: usize,
    /// Per-shard occupancy, in shard order.
    pub shards: Vec<ShardStats>,
    /// Ranked-candidate queries answered from the memo cache.
    pub memo_hits: u64,
    /// Ranked-candidate queries that had to recompute.
    pub memo_misses: u64,
    /// Surviving entries whose memoized ranks mutations invalidated.
    pub funcs_invalidated: u64,
    /// Cancellable queries aborted because a newer epoch superseded them.
    pub queries_superseded: u64,
    /// Pager backend of the resident fingerprint store (`None` when the
    /// corpus owns its fingerprints: fresh, or bulk-loaded).
    pub resident_pager: Option<&'static str>,
    /// Logical pool bytes currently resident in the mmap-backed store.
    pub resident_bytes: u64,
    /// Shards faulted in by the residency manager since load.
    pub shard_faults: u64,
    /// Shards spilled by the residency manager to enforce its budget.
    pub shard_spills: u64,
}

/// Where one entry's fingerprint lives.
///
/// Fresh ingests and bulk snapshot loads own their signature and band
/// keys on the heap; a corpus restored via
/// [`Corpus::load_snapshot_resident`] leaves them in the snapshot file
/// and records only the row, so restore cost is O(touched rows), not
/// O(corpus). Any mutation of a resident entry (an update or a touch)
/// recomputes the fingerprint and converts it back to `Owned` — the
/// snapshot file is immutable while mapped.
enum Fingerprint {
    Owned { sig: Vec<u64>, keys: Vec<BandKey> },
    Resident { row: u32 },
}

/// Borrowed view of one entry's fingerprint: either the owned vectors or
/// a pinned row of the resident store (which keeps the backing shard
/// buffer alive for the lifetime of the view).
enum FpRef<'a> {
    Owned { sig: &'a [u64], keys: &'a [BandKey] },
    Resident(RowRef<'a>),
}

impl FpRef<'_> {
    fn sig(&self) -> &[u64] {
        match self {
            FpRef::Owned { sig, .. } => sig,
            FpRef::Resident(r) => r.sig(),
        }
    }

    fn keys(&self) -> &[BandKey] {
        match self {
            FpRef::Owned { keys, .. } => keys,
            FpRef::Resident(r) => r.keys(),
        }
    }
}

struct Entry {
    /// Original (unqualified) function name.
    func: String,
    /// `<module>.<func>`, the corpus-wide identity.
    qualified: String,
    /// Backend signature + band keys (see [`signature_similarity`]),
    /// owned or resident in a mapped snapshot.
    fp: Fingerprint,
    /// First epoch at which this entry is visible.
    added: u64,
    /// First epoch at which it is no longer visible (`u64::MAX` = live).
    evicted: u64,
    /// Revision (epoch) at which `fp`/`keys` were computed. Bumped by
    /// `update_function`; `added` for entries never updated.
    rev: u64,
    /// Revision at which the entry's memoized ranks were last
    /// invalidated — by its own (re)computation or by a mutation in its
    /// band-collision neighborhood.
    dirty_rev: u64,
}

struct ModuleRecord {
    name: String,
    /// The module as ingested (unqualified names).
    module: LazyModule,
    entry_ids: Vec<usize>,
    live: bool,
}

/// A module body that may still be IR source text.
///
/// Snapshot restore defers parsing: queries never touch module bodies
/// (they run on the resident signatures alone), so a restored daemon is
/// serving after one bulk read, and each module parses on first touch —
/// an update, a merge, or a source render. Ingested modules are born
/// parsed.
struct LazyModule {
    /// Source to parse on first touch; `None` once parsed eagerly.
    src: Option<String>,
    cell: std::sync::OnceLock<Module>,
}

impl LazyModule {
    fn parsed(m: Module) -> LazyModule {
        let cell = std::sync::OnceLock::new();
        assert!(cell.set(m).is_ok(), "fresh cell");
        LazyModule { src: None, cell }
    }

    fn deferred(src: String) -> LazyModule {
        LazyModule { src: Some(src), cell: std::sync::OnceLock::new() }
    }

    /// The parsed module, parsing the deferred source on first touch.
    /// Snapshot payloads are checksummed, so a non-parsing source means
    /// the writer produced garbage — a bug, not an input condition.
    fn get(&self) -> &Module {
        self.cell.get_or_init(|| {
            let src = self.src.as_ref().expect("deferred module has source");
            f3m_ir::parser::parse_module(src)
                .expect("checksummed snapshot module source parses")
        })
    }

    fn set(&mut self, m: Module) {
        self.src = None;
        self.cell = std::sync::OnceLock::new();
        assert!(self.cell.set(m).is_ok(), "fresh cell");
    }

    /// The canonical IR source: verbatim if the deferred source was
    /// never parsed (rendering is the identity on rendered sources),
    /// rendered otherwise.
    fn source(&self) -> String {
        match (self.cell.get(), &self.src) {
            (None, Some(src)) => src.clone(),
            (m, _) => render_module_source(m.expect("parsed or deferred"), None, None),
        }
    }
}

#[derive(Default)]
struct Table {
    entries: Vec<Entry>,
    modules: Vec<ModuleRecord>,
}

/// One memoized ranked-candidate list: the full (untruncated,
/// threshold-filtered, sorted) list for an entry, stamped with the epoch
/// it was computed under.
struct CachedRank {
    pinned: u64,
    ranked: Vec<(usize, f64)>,
}

/// Memo layer over per-entry ranked candidates. Lock order is always
/// table before cache.
type QueryCache = RwLock<HashMap<usize, CachedRank>>;

/// Per-query pairwise similarity cache, keyed on `(min(i, j), max(i, j))`
/// so the estimate for a symmetric pair is computed once per query.
type SimCache = HashMap<(usize, usize), f64>;

#[derive(Default)]
struct MemoCounters {
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    funcs_invalidated: AtomicU64,
    queries_superseded: AtomicU64,
}

/// How many times `query_module` retries a superseded cancellable pass
/// before falling back to a lock-held consistent one.
const QUERY_RETRIES: usize = 3;

/// The resident corpus: ingested modules + sharded fingerprint index.
///
/// All operations take `&self`; reads proceed concurrently, mutations
/// serialize on an internal lock. See the module docs for the visibility
/// model.
pub struct Corpus {
    cfg: CorpusConfig,
    backend: Box<dyn FingerprintBackend>,
    index: ShardedLshIndex<usize>,
    table: RwLock<Table>,
    cache: QueryCache,
    counters: MemoCounters,
    /// Backing store for [`Fingerprint::Resident`] entries; `None` for
    /// fresh and bulk-loaded corpora.
    resident: Option<ResidentStore>,
    /// Serializes ingest/evict/update so epoch intervals never interleave.
    mutate: Mutex<()>,
}

/// True if `s` is non-empty and lexable as an IR symbol (`@name`), i.e.
/// usable as a module/qualification prefix.
pub fn symbol_safe(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.')
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new(cfg: CorpusConfig) -> Corpus {
        let backend = backend_for(cfg.params.backend, cfg.params.k);
        let index = ShardedLshIndex::new(cfg.params.lsh, cfg.shards);
        Corpus {
            cfg,
            backend,
            index,
            table: RwLock::new(Table::default()),
            cache: RwLock::new(HashMap::new()),
            counters: MemoCounters::default(),
            resident: None,
            mutate: Mutex::new(()),
        }
    }

    pub fn config(&self) -> &CorpusConfig {
        &self.cfg
    }

    /// One entry's fingerprint, wherever it lives. Faults the owning
    /// shard of a resident row in (and may spill a cold shard under the
    /// budget) as a side effect.
    fn fp<'t>(&'t self, e: &'t Entry) -> FpRef<'t> {
        match &e.fp {
            Fingerprint::Owned { sig, keys } => FpRef::Owned { sig, keys },
            Fingerprint::Resident { row } => {
                let store = self.resident.as_ref().expect("resident entry has a resident store");
                FpRef::Resident(store.row(*row as usize))
            }
        }
    }

    /// Owned copy of one entry's band keys (the delta-removal paths need
    /// keys that outlive the table borrow).
    fn keys_owned(&self, e: &Entry) -> Vec<BandKey> {
        self.fp(e).keys().to_vec()
    }

    /// Residency counters of the backing resident store, if any.
    pub fn residency(&self) -> Option<(&'static str, ResidencyCounters)> {
        self.resident.as_ref().map(|s| (s.pager_name(), s.counters()))
    }

    /// The epoch currently visible to readers.
    pub fn epoch(&self) -> u64 {
        self.index.epoch()
    }

    /// Registers `m` under its own `name`, fingerprints its
    /// merge-eligible functions (in parallel for `jobs > 1`) and indexes
    /// them. No existing entry is touched — cost is proportional to the
    /// new module alone.
    pub fn ingest(&self, m: Module) -> Result<IngestSummary, String> {
        let name = m.name.clone();
        if !symbol_safe(&name) {
            return Err(format!(
                "module name `{name}` is not usable as a symbol prefix \
                 (allowed: A-Z a-z 0-9 _ .)"
            ));
        }
        let defined = m.defined_functions();
        let funcs: Vec<_> =
            defined.iter().copied().filter(|&f| m.function(f).num_linked_insts() > 0).collect();
        let skipped = defined.len() - funcs.len();
        let backend = &*self.backend;
        let per_func = par_map_indexed(funcs.len(), self.cfg.jobs.max(1), |i| {
            let enc = encode_function(&m.types, m.function(funcs[i]));
            let sig = backend.signature(&enc);
            let keys = band_keys_for(self.cfg.params.lsh, &sig);
            (sig, keys)
        });

        let _writer = self.mutate.lock().unwrap();
        let next_epoch = self.index.epoch() + 1;
        let inserted: Vec<(usize, Vec<BandKey>)> = {
            let mut t = self.table.write().unwrap();
            if t.modules.iter().any(|r| r.live && r.name == name) {
                return Err(format!("module `{name}` is already ingested (evict it first)"));
            }
            let live_qualified: HashSet<&str> = t
                .entries
                .iter()
                .filter(|e| e.evicted == u64::MAX)
                .map(|e| e.qualified.as_str())
                .collect();
            for &f in &funcs {
                let q = format!("{name}.{}", m.function(f).name);
                if live_qualified.contains(q.as_str()) {
                    return Err(format!("qualified name `{q}` collides with a resident function"));
                }
            }
            let mut entry_ids = Vec::with_capacity(funcs.len());
            let mut inserted = Vec::with_capacity(funcs.len());
            for (&f, (sig, keys)) in funcs.iter().zip(per_func) {
                let id = t.entries.len();
                let func = m.function(f).name.clone();
                t.entries.push(Entry {
                    qualified: format!("{name}.{func}"),
                    func,
                    fp: Fingerprint::Owned { sig, keys: keys.clone() },
                    added: next_epoch,
                    evicted: u64::MAX,
                    rev: next_epoch,
                    dirty_rev: next_epoch,
                });
                entry_ids.push(id);
                inserted.push((id, keys));
            }
            t.modules.push(ModuleRecord {
                name: name.clone(),
                module: LazyModule::parsed(m),
                entry_ids,
                live: true,
            });
            inserted
        };
        let dirty = self.index.apply_delta(&[], &inserted);
        self.finalize_mutation(&dirty, next_epoch);
        let epoch = self.index.advance_epoch();
        debug_assert_eq!(epoch, next_epoch);
        Ok(IngestSummary { module: name, functions: inserted.len(), skipped, epoch })
    }

    /// Removes module `name` from the corpus: marks its entries evicted
    /// and deletes their band keys from the index. Cost is proportional
    /// to the module's own entries — the index is never rebuilt.
    pub fn evict(&self, name: &str) -> Result<EvictSummary, String> {
        let _writer = self.mutate.lock().unwrap();
        let next_epoch = self.index.epoch() + 1;
        let removed: Vec<(usize, Vec<BandKey>)> = {
            let mut t = self.table.write().unwrap();
            let Some(mi) = t.modules.iter().position(|r| r.live && r.name == name) else {
                return Err(format!("module `{name}` is not resident"));
            };
            t.modules[mi].live = false;
            let ids = t.modules[mi].entry_ids.clone();
            ids.iter()
                .map(|&id| {
                    t.entries[id].evicted = next_epoch;
                    (id, self.keys_owned(&t.entries[id]))
                })
                .collect()
        };
        let dirty = self.index.apply_delta(&removed, &[]);
        self.finalize_mutation(&dirty, next_epoch);
        let epoch = self.index.advance_epoch();
        debug_assert_eq!(epoch, next_epoch);
        Ok(EvictSummary { module: name.to_string(), functions: removed.len(), epoch })
    }

    /// Replaces (or, with `replacement_ir == None`, merely *touches*) one
    /// resident merge-eligible function without evicting its module.
    ///
    /// `replacement_ir` is module-wrapped IR text containing a definition
    /// of `func`; the resident module is re-rendered with that one body
    /// spliced in (print + parse, so the result is verified) and only the
    /// function's own fingerprint is recomputed. The index is updated by
    /// delta — old band keys out, new keys in — and exactly the touched
    /// band-collision neighborhood loses its memoized ranks. A `touch`
    /// re-fingerprints the resident body and forces the same
    /// invalidation without changing any IR.
    pub fn update_function(
        &self,
        module: &str,
        func: &str,
        replacement_ir: Option<&str>,
    ) -> Result<UpdateSummary, String> {
        let _writer = self.mutate.lock().unwrap();
        let next_epoch = self.index.epoch() + 1;

        // Resolve the target and render the replacement module outside
        // any write lock — parsing and printing dominate the cost.
        let (mi, entry_id, old_keys, old_text) = {
            let t = self.table.read().unwrap();
            let mi = t
                .modules
                .iter()
                .position(|r| r.live && r.name == module)
                .ok_or_else(|| format!("module `{module}` is not resident"))?;
            let rec = &t.modules[mi];
            let Some(&id) = rec.entry_ids.iter().find(|&&id| t.entries[id].func == func) else {
                return Err(format!(
                    "module `{module}` has no merge-eligible function `{func}`"
                ));
            };
            let fid = rec.module.get().lookup_function(func).expect("entry function exists");
            (mi, id, self.keys_owned(&t.entries[id]), print_function(rec.module.get(), fid))
        };

        let (new_module, changed) = match replacement_ir {
            None => (None, false),
            Some(text) => {
                let incoming = f3m_ir::parser::parse_module(text)
                    .map_err(|e| format!("update: replacement does not parse: {e}"))?;
                let fid = incoming
                    .lookup_function(func)
                    .filter(|&f| !incoming.function(f).is_declaration)
                    .ok_or_else(|| format!("update: replacement does not define `{func}`"))?;
                if incoming.function(fid).num_linked_insts() == 0 {
                    return Err(format!(
                        "update: replacement `{func}` has no linked instructions \
                         (would become merge-ineligible)"
                    ));
                }
                let fn_text = print_function(&incoming, fid);
                if fn_text == old_text {
                    (None, false)
                } else {
                    let t = self.table.read().unwrap();
                    let src = render_module_source(
                        t.modules[mi].module.get(),
                        Some((func, &fn_text)),
                        None,
                    );
                    drop(t);
                    let rebuilt = f3m_ir::parser::parse_module(&src)
                        .map_err(|e| format!("update: spliced module does not verify: {e}"))?;
                    (Some(rebuilt), true)
                }
            }
        };

        // Recompute the one fingerprint from the effective body.
        let (sig, new_keys) = {
            let t = self.table.read().unwrap();
            let m = new_module.as_ref().unwrap_or_else(|| t.modules[mi].module.get());
            let fid = m.lookup_function(func).expect("spliced function exists");
            let enc = encode_function(&m.types, m.function(fid));
            let sig = self.backend.signature(&enc);
            let keys = band_keys_for(self.cfg.params.lsh, &sig);
            (sig, keys)
        };

        // Install the new body and stamps before touching the index, so
        // any id the index surfaces always has backing entry data.
        {
            let mut t = self.table.write().unwrap();
            if let Some(m2) = new_module {
                t.modules[mi].module.set(m2);
            }
            let e = &mut t.entries[entry_id];
            e.fp = Fingerprint::Owned { sig, keys: new_keys.clone() };
            e.rev = next_epoch;
        }
        let dirty = self.index.apply_delta(&[(entry_id, old_keys)], &[(entry_id, new_keys)]);
        let funcs_invalidated = self.finalize_mutation(&dirty, next_epoch);
        let epoch = self.index.advance_epoch();
        debug_assert_eq!(epoch, next_epoch);
        Ok(UpdateSummary {
            module: module.to_string(),
            func: func.to_string(),
            epoch,
            changed,
            funcs_invalidated,
        })
    }

    /// Appends one new merge-eligible function to a resident module
    /// without evicting it. `ir` is module-wrapped IR text defining
    /// `func`; the resident module is re-rendered with the body appended
    /// (print + parse) and exactly one fingerprint is computed.
    pub fn ingest_function(
        &self,
        module: &str,
        func: &str,
        ir: &str,
    ) -> Result<IngestSummary, String> {
        let _writer = self.mutate.lock().unwrap();
        let next_epoch = self.index.epoch() + 1;

        let incoming = f3m_ir::parser::parse_module(ir)
            .map_err(|e| format!("ingest-function: body does not parse: {e}"))?;
        let fid = incoming
            .lookup_function(func)
            .filter(|&f| !incoming.function(f).is_declaration)
            .ok_or_else(|| format!("ingest-function: IR does not define `{func}`"))?;
        if incoming.function(fid).num_linked_insts() == 0 {
            return Err(format!(
                "ingest-function: `{func}` has no linked instructions (not merge-eligible)"
            ));
        }
        let fn_text = print_function(&incoming, fid);

        let (mi, rebuilt) = {
            let t = self.table.read().unwrap();
            let mi = t
                .modules
                .iter()
                .position(|r| r.live && r.name == module)
                .ok_or_else(|| format!("module `{module}` is not resident"))?;
            if t.modules[mi].module.get().lookup_function(func).is_some() {
                return Err(format!(
                    "module `{module}` already has a function `{func}` (use update)"
                ));
            }
            let qualified = format!("{module}.{func}");
            if t.entries.iter().any(|e| e.evicted == u64::MAX && e.qualified == qualified) {
                return Err(format!("qualified name `{qualified}` collides with a resident function"));
            }
            let src = render_module_source(t.modules[mi].module.get(), None, Some(&fn_text));
            (mi, src)
        };
        let rebuilt = f3m_ir::parser::parse_module(&rebuilt)
            .map_err(|e| format!("ingest-function: appended module does not verify: {e}"))?;

        let (sig, keys) = {
            let fid = rebuilt.lookup_function(func).expect("appended function exists");
            let enc = encode_function(&rebuilt.types, rebuilt.function(fid));
            let sig = self.backend.signature(&enc);
            let keys = band_keys_for(self.cfg.params.lsh, &sig);
            (sig, keys)
        };

        let entry_id = {
            let mut t = self.table.write().unwrap();
            let id = t.entries.len();
            t.entries.push(Entry {
                func: func.to_string(),
                qualified: format!("{module}.{func}"),
                fp: Fingerprint::Owned { sig, keys: keys.clone() },
                added: next_epoch,
                evicted: u64::MAX,
                rev: next_epoch,
                dirty_rev: next_epoch,
            });
            t.modules[mi].module.set(rebuilt);
            t.modules[mi].entry_ids.push(id);
            id
        };
        let dirty = self.index.apply_delta(&[], &[(entry_id, keys)]);
        self.finalize_mutation(&dirty, next_epoch);
        let epoch = self.index.advance_epoch();
        debug_assert_eq!(epoch, next_epoch);
        Ok(IngestSummary { module: module.to_string(), functions: 1, skipped: 0, epoch })
    }

    /// Marks `dirty` entries invalidated at `next_epoch` and drops their
    /// memoized ranks. Returns how many *surviving* residents were
    /// invalidated: entries created or evicted by this very mutation had
    /// no reusable memo to lose and are not counted.
    fn finalize_mutation(&self, dirty: &[usize], next_epoch: u64) -> u64 {
        let mut t = self.table.write().unwrap();
        let mut cache = self.cache.write().unwrap();
        let mut invalidated = 0u64;
        for &id in dirty {
            let e = &mut t.entries[id];
            e.dirty_rev = next_epoch;
            cache.remove(&id);
            if e.added < next_epoch && e.evicted > next_epoch {
                invalidated += 1;
            }
        }
        self.counters.funcs_invalidated.fetch_add(invalidated, Ordering::Relaxed);
        invalidated
    }

    /// Top-`k` resident candidates for one function, by qualified
    /// identity (`module` + unqualified `func` name).
    pub fn query_function(
        &self,
        module: &str,
        func: &str,
        k: usize,
    ) -> Result<(u64, QueryResult), String> {
        let epoch = self.index.epoch();
        let t = self.table.read().unwrap();
        let rec = Self::live_module(&t, module)?;
        let Some(&id) = rec.entry_ids.iter().find(|&&id| t.entries[id].func == func) else {
            return Err(format!("module `{module}` has no merge-eligible function `{func}`"));
        };
        let mut sims = SimCache::new();
        Ok((epoch, self.ranked(&t, id, epoch, k, &mut sims)))
    }

    /// Top-`k` resident candidates for every merge-eligible function of
    /// `module`, in function order.
    ///
    /// Runs the cancellable pass with an epoch-supersession predicate and
    /// retries a few times under write pressure; if every attempt is
    /// superseded, falls back to one consistent pass holding the table
    /// read lock throughout (briefly blocking writers). Synchronous
    /// callers therefore always get a complete, snapshot-consistent
    /// answer.
    pub fn query_module(&self, module: &str, k: usize) -> Result<(u64, Vec<QueryResult>), String> {
        for _ in 0..QUERY_RETRIES {
            match self.query_module_cancellable(module, k, |pinned| self.epoch() != pinned)? {
                QueryOutcome::Complete { epoch, results } => return Ok((epoch, results)),
                QueryOutcome::Superseded { .. } => continue,
            }
        }
        let epoch = self.index.epoch();
        let t = self.table.read().unwrap();
        let rec = Self::live_module(&t, module)?;
        let mut sims = SimCache::new();
        let results =
            rec.entry_ids.iter().map(|&id| self.ranked(&t, id, epoch, k, &mut sims)).collect();
        Ok((epoch, results))
    }

    /// Cancellable variant of [`Corpus::query_module`]: pins the current
    /// epoch, then releases and re-acquires the table lock between
    /// per-function rankings, calling `is_superseded(pinned)` at each
    /// boundary. Returns [`QueryOutcome::Superseded`] (and bumps
    /// `queries_superseded`) as soon as the predicate fires — or at the
    /// end, when the completed pass is found to have raced a mutation —
    /// so a long module query never blocks writers for its whole
    /// duration, and a `Complete` outcome is always a consistent snapshot
    /// at the pinned epoch.
    pub fn query_module_cancellable(
        &self,
        module: &str,
        k: usize,
        mut is_superseded: impl FnMut(u64) -> bool,
    ) -> Result<QueryOutcome, String> {
        let epoch = self.index.epoch();
        let entry_ids: Vec<usize> = {
            let t = self.table.read().unwrap();
            Self::live_module(&t, module)?.entry_ids.clone()
        };
        let mut sims = SimCache::new();
        let mut results = Vec::with_capacity(entry_ids.len());
        for &id in &entry_ids {
            if is_superseded(epoch) {
                return Ok(self.superseded(epoch));
            }
            let t = self.table.read().unwrap();
            results.push(self.ranked(&t, id, epoch, k, &mut sims));
        }
        // A mutation may have staged state we read without yet advancing
        // the epoch. If no writer is active now and the epoch still
        // matches the pin, every ranking above saw the pinned snapshot.
        if is_superseded(epoch) || self.epoch() != epoch {
            return Ok(self.superseded(epoch));
        }
        match self.mutate.try_lock() {
            Ok(guard) => drop(guard),
            Err(_) => return Ok(self.superseded(epoch)),
        }
        Ok(QueryOutcome::Complete { epoch, results })
    }

    /// Records a query that was answered `superseded` — either one this
    /// corpus cancelled itself or a caller-side epoch-precondition miss
    /// (the daemon's `if_epoch`) — and builds the outcome.
    pub fn superseded(&self, started: u64) -> QueryOutcome {
        self.counters.queries_superseded.fetch_add(1, Ordering::Relaxed);
        QueryOutcome::Superseded { started, epoch: self.index.epoch() }
    }

    fn live_module<'t>(t: &'t Table, name: &str) -> Result<&'t ModuleRecord, String> {
        t.modules
            .iter()
            .find(|r| r.live && r.name == name)
            .ok_or_else(|| format!("module `{name}` is not resident"))
    }

    /// Corpus-global candidate pairs: every live function's top-`k`
    /// ranked candidates through the memoized [`QueryCache`] path,
    /// symmetrized, deduped and ordered by similarity descending then
    /// qualified names ascending. The resulting list is a pure function
    /// of the live functions and the merge parameters — identical for
    /// any shard count and across from-scratch rebuilds — which is what
    /// makes the global merge plan deterministic. Because the rankings
    /// run through the memo, a repeat call after a mutation recomputes
    /// only the invalidated band-collision neighborhoods (observable via
    /// `memo_hits`/`memo_misses` in [`CorpusStats`]).
    ///
    /// Returns the pinned epoch alongside the pairs; the whole scan runs
    /// under one table read lock, so the list is a consistent snapshot at
    /// that epoch.
    pub fn global_candidates(&self, k: usize) -> Result<(u64, Vec<GlobalPair>), String> {
        let epoch = self.index.epoch();
        let t = self.table.read().unwrap();
        let mut module_of: HashMap<&str, usize> = HashMap::new();
        for (mi, rec) in t.modules.iter().enumerate() {
            if rec.live {
                for &id in &rec.entry_ids {
                    module_of.insert(t.entries[id].qualified.as_str(), mi);
                }
            }
        }
        let mut sims = SimCache::new();
        let mut best: HashMap<(String, String), (f64, bool)> = HashMap::new();
        for rec in t.modules.iter().filter(|r| r.live) {
            for &id in &rec.entry_ids {
                let res = self.ranked(&t, id, epoch, k, &mut sims);
                for cand in &res.candidates {
                    let (a, b) = if res.func <= cand.func {
                        (res.func.clone(), cand.func.clone())
                    } else {
                        (cand.func.clone(), res.func.clone())
                    };
                    let cross = module_of.get(a.as_str()) != module_of.get(b.as_str());
                    best.entry((a, b)).or_insert((cand.similarity, cross));
                }
            }
        }
        let mut pairs: Vec<GlobalPair> = best
            .into_iter()
            .map(|((a, b), (similarity, cross_module))| GlobalPair {
                a,
                b,
                similarity,
                cross_module,
            })
            .collect();
        pairs.sort_by(|x, y| {
            y.similarity
                .total_cmp(&x.similarity)
                .then_with(|| x.a.cmp(&y.a))
                .then_with(|| x.b.cmp(&y.b))
        });
        Ok((epoch, pairs))
    }

    /// Revision stamp of a resident function's fingerprint — the epoch
    /// at which it was last (re)computed.
    pub fn function_revision(&self, module: &str, func: &str) -> Option<u64> {
        let t = self.table.read().unwrap();
        let rec = t.modules.iter().find(|r| r.live && r.name == module)?;
        let &id = rec.entry_ids.iter().find(|&&id| t.entries[id].func == func)?;
        Some(t.entries[id].rev)
    }

    /// Ranks the candidates of entry `i` visible at `epoch`: probe the
    /// sharded index, filter by epoch interval and similarity threshold,
    /// order by similarity descending / entry order ascending. This is
    /// the same rule as `CandidateSearch::ranked_candidates`, so daemon
    /// queries agree with the offline seam over [`combine_modules`].
    ///
    /// The full list is memoized in the [`QueryCache`]: a cached list
    /// computed under pinned epoch `P` serves a query pinned at `E` iff
    /// `dirty_rev ≤ min(P, E)` — no mutation has touched this entry's
    /// band-collision neighborhood since before either pin, so the two
    /// pins see the same durable inputs. `sims` is the per-query pairwise
    /// similarity cache shared across a module query's loop, so symmetric
    /// pairs are estimated once per query, not once per endpoint.
    fn ranked(&self, t: &Table, i: usize, epoch: u64, k: usize, sims: &mut SimCache) -> QueryResult {
        let ent = &t.entries[i];
        if let Some(c) = self.cache.read().unwrap().get(&i) {
            if ent.dirty_rev <= c.pinned.min(epoch) {
                self.counters.memo_hits.fetch_add(1, Ordering::Relaxed);
                return self.render_result(t, ent, c.ranked.iter().take(k).copied());
            }
        }
        self.counters.memo_misses.fetch_add(1, Ordering::Relaxed);
        let fp = self.fp(ent);
        // Multi-probe widens the probed key list with perturbed band
        // keys; `probes == 0` is exactly the classic single-probe query.
        let (cands, _) = if self.cfg.params.probes > 0 {
            let probed = probe_keys_for(self.cfg.params.lsh, fp.sig(), self.cfg.params.probes);
            self.index.candidates_counted(&probed, i)
        } else {
            self.index.candidates_counted(fp.keys(), i)
        };
        let mut ranked: Vec<(usize, f64)> = cands
            .into_iter()
            .filter(|&j| {
                let e = &t.entries[j];
                e.added <= epoch && epoch < e.evicted
            })
            .map(|j| {
                let key = (i.min(j), i.max(j));
                let sim = *sims
                    .entry(key)
                    .or_insert_with(|| {
                        signature_similarity(fp.sig(), self.fp(&t.entries[j]).sig())
                    });
                (j, sim)
            })
            .filter(|&(_, sim)| sim >= self.cfg.params.threshold)
            .collect();
        // Ties (similarities are multiples of 1/k) break on qualified
        // name, not entry id: names are unique per epoch and survive a
        // from-scratch rebuild, so incremental and rebuilt corpora rank
        // identically even after updates reassigned internal ids.
        ranked.sort_by(|a, b| {
            b.1.total_cmp(&a.1)
                .then_with(|| t.entries[a.0].qualified.cmp(&t.entries[b.0].qualified))
        });
        let result = self.render_result(t, ent, ranked.iter().take(k).copied());
        self.cache.write().unwrap().insert(i, CachedRank { pinned: epoch, ranked });
        result
    }

    fn render_result(
        &self,
        t: &Table,
        ent: &Entry,
        ranked: impl Iterator<Item = (usize, f64)>,
    ) -> QueryResult {
        QueryResult {
            func: ent.qualified.clone(),
            candidates: ranked
                .map(|(j, similarity)| RankedCandidate {
                    func: t.entries[j].qualified.clone(),
                    similarity,
                })
                .collect(),
        }
    }

    /// Snapshot of corpus and index occupancy.
    pub fn stats(&self) -> CorpusStats {
        let epoch = self.index.epoch();
        let t = self.table.read().unwrap();
        let residency = self.residency();
        let rc = residency.map(|(_, c)| c).unwrap_or_default();
        CorpusStats {
            resident_pager: residency.map(|(name, _)| name),
            resident_bytes: rc.resident_bytes,
            shard_faults: rc.shard_faults,
            shard_spills: rc.shard_spills,
            epoch,
            modules_live: t.modules.iter().filter(|r| r.live).count(),
            modules_total: t.modules.len(),
            functions_live: t.entries.iter().filter(|e| e.evicted == u64::MAX).count(),
            entries_total: t.entries.len(),
            index_buckets: self.index.num_buckets(),
            index_max_bucket: self.index.max_bucket_size(),
            shards: self.index.shard_stats(),
            memo_hits: self.counters.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.counters.memo_misses.load(Ordering::Relaxed),
            funcs_invalidated: self.counters.funcs_invalidated.load(Ordering::Relaxed),
            queries_superseded: self.counters.queries_superseded.load(Ordering::Relaxed),
        }
    }

    /// IR text of one resident module as currently held — including any
    /// function-level surgery applied by [`Corpus::update_function`] or
    /// [`Corpus::ingest_function`]. Re-ingesting this text into a fresh
    /// corpus reproduces the module's resident state exactly.
    pub fn module_source(&self, module: &str) -> Result<String, String> {
        let t = self.table.read().unwrap();
        Ok(Self::live_module(&t, module)?.module.source())
    }

    /// The combined module over all live modules, in ingest order, with
    /// every definition under its qualified name (see [`combine_modules`]).
    pub fn combined_module(&self) -> Result<Module, String> {
        let t = self.table.read().unwrap();
        let live: Vec<&Module> =
            t.modules.iter().filter(|r| r.live).map(|r| r.module.get()).collect();
        combine_modules(&live)
    }

    /// Runs the full merging pass over the combined resident corpus and
    /// returns the report together with the merged module. The resident
    /// state is untouched — the pass mutates a freshly combined copy.
    pub fn merge(&self, config: &PassConfig) -> Result<(MergeReport, Module), String> {
        let mut m = self.combined_module()?;
        let report = run_pass(&mut m, config);
        Ok((report, m))
    }

    /// Persists the live corpus as one contiguous snapshot file: packed
    /// signature and band-key pools, the bucket directory of the sharded
    /// index, and a payload carrying module sources plus per-entry epoch
    /// stamps. [`Corpus::load_snapshot`] restores the whole thing in
    /// O(file size) — no re-fingerprinting, no index rebuild.
    ///
    /// Evicted modules and entries are compacted away; the restored
    /// corpus is equivalent to a fresh one holding exactly the live
    /// state (`modules_total`/`entries_total` restart at the live
    /// counts, memo counters at zero).
    pub fn save_snapshot(&self, path: &Path) -> Result<(), SnapshotError> {
        self.save_snapshot_stamped(path, self.index.epoch())
    }

    /// [`Corpus::save_snapshot`] with an explicit header epoch. Exposed
    /// so tests can craft snapshots whose header is older than the entry
    /// stamps (the stale-epoch condition loaders must reject).
    #[doc(hidden)]
    pub fn save_snapshot_stamped(&self, path: &Path, epoch: u64) -> Result<(), SnapshotError> {
        // Serialize against writers so the table, the index and the
        // epoch are one consistent cut.
        let _writer = self.mutate.lock().unwrap();
        let t = self.table.read().unwrap();

        // Compact live entries to dense snapshot rows (entry order, so
        // bucket member lists stay ascending after remapping).
        let live: Vec<usize> =
            (0..t.entries.len()).filter(|&i| t.entries[i].evicted == u64::MAX).collect();
        let mut row_of = vec![u32::MAX; t.entries.len()];
        for (row, &id) in live.iter().enumerate() {
            row_of[id] = row as u32;
        }
        let mut store = PackedFingerprintStore::with_capacity(
            self.cfg.params.k,
            self.cfg.params.lsh.bands,
            live.len(),
        );
        for &id in &live {
            let fp = self.fp(&t.entries[id]);
            store.push_with_keys(fp.sig(), fp.keys());
        }

        // Bucket directory across all shards. Band keys are globally
        // unique (the key determines its shard), so one flat directory
        // suffices and a loader with a different shard count re-routes.
        let mut buckets: Vec<(BandKey, Vec<u32>)> = Vec::new();
        for shard in 0..self.index.num_shards() {
            for (key, members) in self.index.export_shard(shard) {
                let rows: Vec<u32> = members.into_iter().map(|id| row_of[id]).collect();
                debug_assert!(
                    rows.windows(2).all(|w| w[0] < w[1]),
                    "live rows preserve entry order"
                );
                buckets.push((key, rows));
            }
        }
        buckets.sort_unstable_by_key(|&(key, _)| key);

        // Payload: live module sources, then per-row metadata.
        let live_modules: Vec<usize> =
            (0..t.modules.len()).filter(|&i| t.modules[i].live).collect();
        let mut module_row: HashMap<usize, u32> = HashMap::new();
        for (mrow, &mi) in live_modules.iter().enumerate() {
            module_row.insert(mi, mrow as u32);
        }
        let mut entry_module = vec![u32::MAX; t.entries.len()];
        for &mi in &live_modules {
            for &id in &t.modules[mi].entry_ids {
                entry_module[id] = module_row[&mi];
            }
        }
        let mut payload = Vec::new();
        payload.extend_from_slice(&(live_modules.len() as u32).to_le_bytes());
        for &mi in &live_modules {
            let rec = &t.modules[mi];
            write_str(&mut payload, &rec.name);
            write_str(&mut payload, &rec.module.source());
        }
        for &id in &live {
            let e = &t.entries[id];
            debug_assert_ne!(entry_module[id], u32::MAX, "live entry belongs to a live module");
            payload.extend_from_slice(&entry_module[id].to_le_bytes());
            write_str(&mut payload, &e.func);
            payload.extend_from_slice(&e.added.to_le_bytes());
            payload.extend_from_slice(&e.rev.to_le_bytes());
            payload.extend_from_slice(&e.dirty_rev.to_le_bytes());
        }

        let header = SnapshotHeader {
            backend: self.cfg.params.backend,
            k: self.cfg.params.k,
            lsh: self.cfg.params.lsh,
            threshold: self.cfg.params.threshold,
            shards: self.index.num_shards(),
            epoch,
            entries: live.len(),
        };
        snapshot::save_snapshot(path, &header, &store, &buckets, &payload)
    }

    /// Restores a corpus saved by [`Corpus::save_snapshot`] in one bulk
    /// read: signatures and band keys come straight out of the packed
    /// pools, the index is rebuilt bucket-by-bucket from the directory
    /// (re-routed if `cfg.shards` differs from the writer's), and the
    /// epoch resumes where the snapshot left off. Module bodies are NOT
    /// parsed here — queries run on the resident signatures, so restore
    /// cost is I/O + decode, and each body parses on first touch (an
    /// update, a merge, or a source render).
    ///
    /// `cfg.params` must match the snapshot header exactly — resident
    /// fingerprints are only valid under the parameters they were
    /// computed with — otherwise [`SnapshotError::Mismatch`]. A snapshot
    /// whose entry stamps exceed its header epoch is rejected with
    /// [`SnapshotError::StaleEpoch`]; callers (the daemon) fall back to
    /// re-ingesting [`Corpus::snapshot_sources`].
    pub fn load_snapshot(path: &Path, cfg: CorpusConfig) -> Result<Corpus, SnapshotError> {
        let snap = snapshot::open_snapshot(path)?;
        Self::check_snapshot_params(&snap.header, &cfg.params)?;
        let store = snap.store;
        Self::restore(cfg, snap.header, snap.buckets, &snap.payload, None, |row| {
            Fingerprint::Owned { sig: store.sig(row).to_vec(), keys: store.keys(row).to_vec() }
        })
    }

    /// Restores a snapshot *without* reading the fingerprint pools:
    /// validates and decodes only the meta prefix (header, bucket
    /// directory, payload), maps the pools through a [`ResidentStore`],
    /// and leaves every entry's fingerprint resident in the file. Rows
    /// fault in shard-by-shard as queries touch them, and
    /// `resident_budget` (0 = unlimited) caps how many pool bytes stay
    /// hot at once — restart cost becomes O(touched), not O(corpus).
    ///
    /// Answers are byte-identical to [`Corpus::load_snapshot`] under any
    /// budget and any pager backend; only the residency counters (and
    /// RSS) differ. Rejects the same mismatch/stale conditions.
    pub fn load_snapshot_resident(
        path: &Path,
        cfg: CorpusConfig,
        pager: PagerKind,
        resident_budget: u64,
    ) -> Result<Corpus, SnapshotError> {
        let (meta, store) = ResidentStore::open(path, pager, resident_budget)?;
        Self::check_snapshot_params(&meta.header, &cfg.params)?;
        Self::restore(cfg, meta.header, meta.buckets, &meta.payload, Some(store), |row| {
            Fingerprint::Resident { row: row as u32 }
        })
    }

    /// `cfg.params` must match the snapshot header exactly — resident
    /// fingerprints are only valid under the parameters they were
    /// computed with. `probes` is deliberately not compared: it is a
    /// query-time knob, never part of the stored state.
    fn check_snapshot_params(h: &SnapshotHeader, params: &MergeParams) -> Result<(), SnapshotError> {
        if h.backend != params.backend
            || h.k != params.k
            || h.lsh != params.lsh
            || h.threshold.to_bits() != params.threshold.to_bits()
        {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot was written under backend={} k={} bands={} rows={} threshold={}; \
                 the corpus is configured for backend={} k={} bands={} rows={} threshold={}",
                h.backend.name(),
                h.k,
                h.lsh.bands,
                h.lsh.rows,
                h.threshold,
                params.backend.name(),
                params.k,
                params.lsh.bands,
                params.lsh.rows,
                params.threshold,
            )));
        }
        Ok(())
    }

    /// Shared tail of the two snapshot loaders: decode the payload,
    /// reject stale epochs, build the table (fingerprints supplied per
    /// row by `fp_for_row`), restore the bucket directory and resume the
    /// epoch.
    fn restore(
        cfg: CorpusConfig,
        header: SnapshotHeader,
        buckets: Vec<(BandKey, Vec<u32>)>,
        payload: &[u8],
        resident: Option<ResidentStore>,
        fp_for_row: impl Fn(usize) -> Fingerprint,
    ) -> Result<Corpus, SnapshotError> {
        let payload = decode_corpus_payload(payload, header.entries)?;
        let newest_entry = payload
            .entries
            .iter()
            .map(|e| e.added.max(e.rev).max(e.dirty_rev))
            .max()
            .unwrap_or(0);
        if newest_entry > header.epoch {
            return Err(SnapshotError::StaleEpoch { snapshot: header.epoch, newest_entry });
        }

        let mut corpus = Corpus::new(cfg);
        corpus.resident = resident;
        {
            let mut t = corpus.table.write().unwrap();
            let mut entry_ids: Vec<Vec<usize>> = vec![Vec::new(); payload.modules.len()];
            for (row, meta) in payload.entries.iter().enumerate() {
                let mi = meta.module_idx as usize;
                if mi >= payload.modules.len() {
                    return Err(SnapshotError::Corrupt("entry references a missing module"));
                }
                entry_ids[mi].push(row);
                t.entries.push(Entry {
                    qualified: format!("{}.{}", payload.modules[mi].0, meta.func),
                    func: meta.func.clone(),
                    fp: fp_for_row(row),
                    added: meta.added,
                    evicted: u64::MAX,
                    rev: meta.rev,
                    dirty_rev: meta.dirty_rev,
                });
            }
            // Module bodies stay as deferred source text: queries run on
            // the resident signatures alone, so the daemon serves after
            // this one bulk read and each body parses on first touch.
            for ((name, src), ids) in payload.modules.iter().zip(entry_ids) {
                t.modules.push(ModuleRecord {
                    name: name.clone(),
                    module: LazyModule::deferred(src.clone()),
                    entry_ids: ids,
                    live: true,
                });
            }
        }
        for (key, rows) in buckets {
            corpus.index.restore_bucket(key, rows.into_iter().map(|r| r as usize).collect());
        }
        corpus.index.set_epoch(header.epoch);
        Ok(corpus)
    }

    /// The `(module name, IR source)` pairs stored in a snapshot's
    /// payload — the rebuild path for snapshots whose index cannot be
    /// trusted (e.g. [`SnapshotError::StaleEpoch`]): parse and re-ingest
    /// each source into a fresh corpus.
    pub fn snapshot_sources(path: &Path) -> Result<Vec<(String, String)>, SnapshotError> {
        let snap = snapshot::open_snapshot(path)?;
        let payload = decode_corpus_payload(&snap.payload, snap.header.entries)?;
        Ok(payload.modules)
    }
}

/// Per-entry metadata stored in the snapshot payload.
struct PayloadEntry {
    module_idx: u32,
    func: String,
    added: u64,
    rev: u64,
    dirty_rev: u64,
}

struct CorpusPayload {
    /// Live modules as `(name, IR source)`, ingest order.
    modules: Vec<(String, String)>,
    /// One record per snapshot row, row order.
    entries: Vec<PayloadEntry>,
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader over the snapshot payload.
struct PayloadCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        const TRUNC: SnapshotError = SnapshotError::Corrupt("corpus payload truncated");
        let end = self.pos.checked_add(n).ok_or(TRUNC)?;
        let s = self.bytes.get(self.pos..end).ok_or(TRUNC)?;
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| SnapshotError::Corrupt("corpus payload string is not UTF-8"))
    }
}

fn decode_corpus_payload(bytes: &[u8], entries: usize) -> Result<CorpusPayload, SnapshotError> {
    let mut cur = PayloadCursor { bytes, pos: 0 };
    let num_modules = cur.u32()? as usize;
    let mut modules = Vec::with_capacity(num_modules.min(bytes.len() / 8 + 1));
    for _ in 0..num_modules {
        let name = cur.str()?;
        let src = cur.str()?;
        modules.push((name, src));
    }
    // A hostile header can claim any entry count; each record is at
    // least 32 bytes, so cap the preallocation by what could possibly
    // still be encoded (the loop then fails with a clean truncation).
    let mut out = Vec::with_capacity(entries.min(bytes.len() / 32 + 1));
    for _ in 0..entries {
        let module_idx = cur.u32()?;
        let func = cur.str()?;
        let added = cur.u64()?;
        let rev = cur.u64()?;
        let dirty_rev = cur.u64()?;
        out.push(PayloadEntry { module_idx, func, added, rev, dirty_rev });
    }
    if cur.pos != bytes.len() {
        return Err(SnapshotError::Corrupt("corpus payload has trailing bytes"));
    }
    Ok(CorpusPayload { modules, entries: out })
}

/// Re-renders `m` to IR text with optional single-function surgery:
/// `replace = (name, fn_text)` substitutes that definition's body,
/// `append = fn_text` adds a new definition at the end. Globals,
/// declarations and function order are preserved, so entry ids keep
/// lining up with the module's defined-function order. Callers parse the
/// result, which verifies the splice.
fn render_module_source(m: &Module, replace: Option<(&str, &str)>, append: Option<&str>) -> String {
    let mut text = format!("module \"{}\" {{\n", m.name);
    for (_, g) in m.globals() {
        let bytes: Vec<String> = g.init.iter().map(|b| b.to_string()).collect();
        text.push_str(&format!(
            "global @{} : {} = [{}]\n",
            g.name,
            m.types.display(g.ty),
            bytes.join(", ")
        ));
    }
    for (_, f) in m.functions() {
        if f.is_declaration {
            let params: Vec<String> = f.params.iter().map(|&p| m.types.display(p)).collect();
            text.push_str(&format!(
                "declare @{}({}) -> {}\n",
                f.name,
                params.join(", "),
                m.types.display(f.ret_ty)
            ));
        }
    }
    for (id, f) in m.functions() {
        if f.is_declaration {
            continue;
        }
        match replace {
            Some((name, fn_text)) if name == f.name => text.push_str(fn_text),
            _ => text.push_str(&print_function(m, id)),
        }
        text.push('\n');
    }
    if let Some(fn_text) = append {
        text.push_str(fn_text);
        text.push('\n');
    }
    text.push_str("}\n");
    text
}

/// Combines modules into one, qualifying every definition as
/// `<module>.<function>` and deduplicating shared globals and external
/// declarations by name. A declaration is dropped when any module
/// *defines* that exact symbol; conflicting duplicate globals or
/// declarations (same name, different shape) are errors, as are
/// qualified-name collisions.
///
/// The combination goes through print + parse: each renamed module is
/// rendered to IR text, the pieces are concatenated, and the result is
/// parsed (and therefore verified) as a single module. That keeps the
/// type stores correctly re-interned without any cross-module id
/// surgery.
pub fn combine_modules(mods: &[&Module]) -> Result<Module, String> {
    let mut global_lines: Vec<String> = Vec::new();
    let mut global_by_name: HashMap<String, String> = HashMap::new();
    let mut declare_lines: Vec<(String, String)> = Vec::new();
    let mut declare_by_name: HashMap<String, String> = HashMap::new();
    let mut defined: HashSet<String> = HashSet::new();
    let mut bodies = String::new();

    for &m in mods {
        if !symbol_safe(&m.name) {
            return Err(format!("module name `{}` is not a valid symbol prefix", m.name));
        }
        let mut ns = m.clone();
        for id in ns.defined_functions() {
            let q = format!("{}.{}", m.name, ns.function(id).name);
            if ns.lookup_function(&q).is_some() {
                return Err(format!("qualified name `{q}` collides inside module `{}`", m.name));
            }
            ns.rename_function(id, q);
        }
        for (_, g) in ns.globals() {
            let bytes: Vec<String> = g.init.iter().map(|b| b.to_string()).collect();
            let line = format!(
                "global @{} : {} = [{}]",
                g.name,
                ns.types.display(g.ty),
                bytes.join(", ")
            );
            match global_by_name.get(&g.name) {
                None => {
                    global_by_name.insert(g.name.clone(), line.clone());
                    global_lines.push(line);
                }
                Some(prev) if *prev == line => {}
                Some(_) => {
                    return Err(format!(
                        "global `@{}` redefined with a different type or initializer",
                        g.name
                    ))
                }
            }
        }
        for (id, f) in ns.functions() {
            if f.is_declaration {
                let params: Vec<String> =
                    f.params.iter().map(|&p| ns.types.display(p)).collect();
                let line = format!(
                    "declare @{}({}) -> {}",
                    f.name,
                    params.join(", "),
                    ns.types.display(f.ret_ty)
                );
                match declare_by_name.get(&f.name) {
                    None => {
                        declare_by_name.insert(f.name.clone(), line.clone());
                        declare_lines.push((f.name.clone(), line));
                    }
                    Some(prev) if *prev == line => {}
                    Some(_) => {
                        return Err(format!(
                            "external `@{}` declared with conflicting signatures",
                            f.name
                        ))
                    }
                }
            } else {
                if !defined.insert(f.name.clone()) {
                    return Err(format!("qualified name `{}` defined twice", f.name));
                }
                bodies.push_str(&print_function(&ns, id));
                bodies.push('\n');
            }
        }
    }

    let mut text = String::from("module \"corpus\" {\n");
    for line in &global_lines {
        text.push_str(line);
        text.push('\n');
    }
    if !global_lines.is_empty() {
        text.push('\n');
    }
    for (name, line) in &declare_lines {
        if !defined.contains(name) {
            text.push_str(line);
            text.push('\n');
        }
    }
    text.push_str(&bodies);
    text.push_str("}\n");
    f3m_ir::parser::parse_module(&text).map_err(|e| format!("combine: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::{CandidateSearch, LshMinHashSearch};
    use f3m_ir::ids::FuncId;

    fn workload(name: &str, seed: u64) -> Module {
        let mut spec = f3m_workloads::mini_suite()[0].clone();
        spec.functions = 24;
        spec.seed = seed;
        let mut m = f3m_workloads::build_module(&spec);
        m.name = name.to_string();
        m
    }

    fn corpus() -> Corpus {
        Corpus::new(CorpusConfig { shards: 4, jobs: 2, ..CorpusConfig::default() })
    }

    #[test]
    fn ingest_query_matches_offline_seam_on_combined_module() {
        let c = corpus();
        let m1 = workload("alpha", 11);
        let m2 = workload("beta", 22);
        c.ingest(m1.clone()).unwrap();
        c.ingest(m2.clone()).unwrap();

        // Offline: the seam over the combined module.
        let combined = combine_modules(&[&m1, &m2]).unwrap();
        let funcs: Vec<FuncId> = combined
            .defined_functions()
            .into_iter()
            .filter(|&f| combined.function(f).num_linked_insts() > 0)
            .collect();
        let search = LshMinHashSearch::build(
            &combined,
            &funcs,
            MergeParams::static_default(),
            1,
        );
        let available = vec![true; funcs.len()];

        let (_, results) = c.query_module("alpha", 5).unwrap();
        assert!(!results.is_empty());
        let mut nonempty = 0;
        for (i, r) in results.iter().enumerate() {
            let offline = search.ranked_candidates(i, &available, 5);
            let offline_names: Vec<(String, f64)> = offline
                .into_iter()
                .map(|(j, s)| (combined.function(funcs[j]).name.clone(), s))
                .collect();
            let daemon_names: Vec<(String, f64)> =
                r.candidates.iter().map(|c| (c.func.clone(), c.similarity)).collect();
            assert_eq!(daemon_names, offline_names, "function {} ({})", i, r.func);
            nonempty += usize::from(!r.candidates.is_empty());
        }
        assert!(nonempty > 0, "workload families must produce candidates");
    }

    #[test]
    fn evict_hides_candidates_without_rebuild() {
        let c = corpus();
        c.ingest(workload("alpha", 11)).unwrap();
        c.ingest(workload("beta", 11)).unwrap(); // same seed: cross-module twins
        let (_, before) = c.query_module("alpha", 10).unwrap();
        assert!(before
            .iter()
            .any(|r| r.candidates.iter().any(|cand| cand.func.starts_with("beta."))));

        let before_stats = c.stats();
        let summary = c.evict("beta").unwrap();
        assert!(summary.functions > 0);
        let after_stats = c.stats();
        assert_eq!(after_stats.epoch, before_stats.epoch + 1);
        assert_eq!(after_stats.modules_live, 1);
        assert_eq!(after_stats.modules_total, 2);
        assert!(after_stats.functions_live < before_stats.functions_live);

        let (_, after) = c.query_module("alpha", 10).unwrap();
        for r in &after {
            assert!(
                r.candidates.iter().all(|cand| cand.func.starts_with("alpha.")),
                "evicted module still surfaced: {r:?}"
            );
        }
        // The name is free again.
        c.ingest(workload("beta", 33)).unwrap();
        assert_eq!(c.stats().modules_live, 2);
    }

    #[test]
    fn duplicate_module_and_bad_names_are_rejected() {
        let c = corpus();
        c.ingest(workload("alpha", 1)).unwrap();
        assert!(c.ingest(workload("alpha", 2)).unwrap_err().contains("already ingested"));
        assert!(c.ingest(workload("no spaces", 3)).unwrap_err().contains("symbol prefix"));
        assert!(c.evict("ghost").unwrap_err().contains("not resident"));
        assert!(c.query_module("ghost", 1).is_err());
        assert!(c.query_function("alpha", "nosuch", 1).is_err());
    }

    #[test]
    fn merge_runs_over_combined_corpus() {
        let c = corpus();
        c.ingest(workload("alpha", 5)).unwrap();
        c.ingest(workload("beta", 5)).unwrap();
        let (report, merged) = c.merge(&PassConfig::f3m()).unwrap();
        assert!(report.stats.merges_committed > 0, "twin modules must merge");
        assert!(merged.lookup_function("alpha.__driver").is_some());
        assert!(merged.lookup_function("beta.__driver").is_some());
        // Resident state is untouched by the pass.
        assert_eq!(c.stats().modules_live, 2);
    }

    /// Two merge-eligible members of the same workload family in `m`
    /// (same generated signature, different bodies), as (name_a, name_b).
    fn family_pair(m: &Module) -> (String, String) {
        let eligible: Vec<String> = m
            .defined_functions()
            .into_iter()
            .filter(|&f| m.function(f).num_linked_insts() > 0)
            .map(|f| m.function(f).name.clone())
            .collect();
        for a in &eligible {
            let Some((fam, member)) = a.rsplit_once('_') else { continue };
            if member != "0" {
                continue;
            }
            let b = format!("{fam}_1");
            if eligible.contains(&b) {
                return (a.clone(), b);
            }
        }
        panic!("workload has no eligible family pair");
    }

    /// IR text of `m` with `dst`'s body replaced by `src`'s (same
    /// signature — they are family members), leaving `src` intact.
    fn body_swap_patch(m: &Module, dst: &str, src: &str) -> String {
        let mut patched = m.clone();
        let d = patched.lookup_function(dst).unwrap();
        let s = patched.lookup_function(src).unwrap();
        patched.rename_function(d, format!("{dst}__old"));
        patched.rename_function(s, dst.to_string());
        // Only `dst` is looked up in the patch; the leftover `__old`
        // definition and the missing `src` are ignored by update.
        f3m_ir::printer::print_module(&patched)
    }

    #[test]
    fn update_function_swaps_body_and_requeries_incrementally() {
        let c = corpus();
        let alpha = workload("alpha", 11);
        c.ingest(alpha.clone()).unwrap();
        c.ingest(workload("beta", 22)).unwrap();
        let (dst, src) = family_pair(&alpha);

        // Warm the memo: second identical query is all hits.
        let (_, cold) = c.query_module("alpha", 5).unwrap();
        c.query_module("beta", 5).unwrap();
        let miss_after_warm = c.stats().memo_misses;
        let (_, warm) = c.query_module("alpha", 5).unwrap();
        assert_eq!(cold, warm);
        let s = c.stats();
        assert_eq!(s.memo_misses, miss_after_warm, "warm query must not recompute");
        assert!(s.memo_hits >= cold.len() as u64);

        let rev_before = c.function_revision("alpha", &dst).unwrap();
        let patch = body_swap_patch(&alpha, &dst, &src);
        let up = c.update_function("alpha", &dst, Some(&patch)).unwrap();
        assert!(up.changed);
        assert!(up.funcs_invalidated >= 1, "at least the updated function is dirtied");
        assert_eq!(up.epoch, c.epoch());
        assert_eq!(c.function_revision("alpha", &dst), Some(up.epoch));
        assert!(c.function_revision("alpha", &dst).unwrap() > rev_before);

        // The new body is byte-identical to its source sibling, so the
        // source is now a similarity-1.0 candidate of the updated
        // function.
        let (_, qr) = c.query_function("alpha", &dst, 5).unwrap();
        let top = qr.candidates.first().expect("swapped body must have candidates");
        assert_eq!(top.similarity, 1.0, "identical body ranks at 1.0: {qr:?}");
        assert!(
            qr.candidates.iter().any(|cand| cand.func == format!("alpha.{src}")),
            "source sibling must surface: {qr:?}"
        );

        // O(changed): with every live entry warmed, re-querying both
        // modules recomputes exactly the invalidated neighborhood.
        c.query_module("alpha", 5).unwrap();
        c.query_module("beta", 5).unwrap();
        let miss_before = c.stats().memo_misses;
        c.query_module("alpha", 5).unwrap();
        c.query_module("beta", 5).unwrap();
        assert_eq!(c.stats().memo_misses, miss_before, "all entries warm again");

        // The resident module really carries the new body: a fresh corpus
        // ingesting the same modules agrees on every query.
        let fresh = corpus();
        let combined = c.combined_module().unwrap();
        let patched_alpha_body = print_function(
            &combined,
            combined.lookup_function(&format!("alpha.{dst}")).unwrap(),
        );
        let src_body =
            print_function(&combined, combined.lookup_function(&format!("alpha.{src}")).unwrap());
        assert_eq!(
            patched_alpha_body.lines().skip(1).collect::<Vec<_>>(),
            src_body.lines().skip(1).collect::<Vec<_>>(),
            "updated body equals the source body modulo the header line"
        );
        drop(fresh);
    }

    #[test]
    fn touch_invalidates_without_changing_results() {
        let c = corpus();
        c.ingest(workload("alpha", 11)).unwrap();
        let (_, before) = c.query_module("alpha", 5).unwrap();
        let (dst, _) = family_pair(&workload("alpha", 11));

        let up = c.update_function("alpha", &dst, None).unwrap();
        assert!(!up.changed, "touch never changes IR");
        assert!(up.funcs_invalidated >= 1);
        let invalidated_total = c.stats().funcs_invalidated;
        assert!(invalidated_total >= up.funcs_invalidated);

        let miss_before = c.stats().memo_misses;
        let (_, after) = c.query_module("alpha", 5).unwrap();
        assert_eq!(before, after, "touch is semantically a no-op");
        let recomputed = c.stats().memo_misses - miss_before;
        assert_eq!(recomputed, up.funcs_invalidated, "touch recomputes exactly the dirty set");
    }

    #[test]
    fn ingest_function_appends_without_evicting() {
        let c = corpus();
        c.ingest(workload("alpha", 11)).unwrap();
        let beta = workload("beta", 22);
        c.ingest(beta.clone()).unwrap();

        // Clone an eligible alpha function under a fresh name (a donor
        // module with alpha's seed shares its external declarations, so
        // the transplanted body splices cleanly); the original is then
        // its 1.0-similarity candidate.
        let mut donor = workload("donor", 11);
        let (src, _) = family_pair(&donor);
        let sid = donor.lookup_function(&src).unwrap();
        donor.rename_function(sid, "fresh_fn".to_string());
        let patch = f3m_ir::printer::print_module(&donor);
        drop(beta);

        let epoch_before = c.epoch();
        let sum = c.ingest_function("alpha", "fresh_fn", &patch).unwrap();
        assert_eq!(sum.functions, 1);
        assert_eq!(sum.epoch, epoch_before + 1);
        assert_eq!(c.stats().modules_live, 2, "no module was evicted");

        let (_, qr) = c.query_function("alpha", "fresh_fn", 5).unwrap();
        assert!(
            qr.candidates.iter().any(|cand| cand.func == format!("alpha.{src}")),
            "clone source must be a candidate: {qr:?}"
        );
        assert_eq!(qr.candidates.first().map(|cand| cand.similarity), Some(1.0), "{qr:?}");

        // Appending again under the same name is rejected; so is a
        // non-resident module.
        assert!(c.ingest_function("alpha", "fresh_fn", &patch).unwrap_err().contains("already"));
        assert!(c.ingest_function("ghost", "fresh_fn", &patch).unwrap_err().contains("resident"));
    }

    #[test]
    fn update_rejects_bad_replacements() {
        let c = corpus();
        let alpha = workload("alpha", 11);
        c.ingest(alpha.clone()).unwrap();
        let (dst, _) = family_pair(&alpha);

        assert!(c
            .update_function("ghost", &dst, None)
            .unwrap_err()
            .contains("not resident"));
        assert!(c
            .update_function("alpha", "nosuch", None)
            .unwrap_err()
            .contains("no merge-eligible function"));
        let empty = "module \"p\" {\n}\n";
        assert!(c
            .update_function("alpha", &dst, Some(empty))
            .unwrap_err()
            .contains("does not define"));
        assert!(c
            .update_function("alpha", &dst, Some("module \"p\" { define @x( }"))
            .unwrap_err()
            .contains("does not parse"));
        // The patch parses on its own (it declares its callee) but the
        // spliced body references a symbol alpha does not have, so the
        // rebuilt module fails verification and the corpus is untouched.
        let dangling = format!(
            "module \"p\" {{\ndeclare @__nowhere() -> i32\n\
             define @{dst}() -> i32 {{\nbb0:\n  %0 = call i32 @__nowhere()\n  ret i32 %0\n}}\n}}\n"
        );
        assert!(c
            .update_function("alpha", &dst, Some(&dangling))
            .unwrap_err()
            .contains("does not verify"));
        // Nothing above mutated the corpus.
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn cancellable_query_supersedes_on_predicate() {
        let c = corpus();
        c.ingest(workload("alpha", 11)).unwrap();

        let mut calls = 0;
        let outcome = c
            .query_module_cancellable("alpha", 3, |_| {
                calls += 1;
                calls > 1
            })
            .unwrap();
        match outcome {
            QueryOutcome::Superseded { started, epoch } => {
                assert_eq!(started, 1);
                assert_eq!(epoch, 1, "no mutation actually happened");
            }
            other => panic!("predicate must supersede the query: {other:?}"),
        }
        assert_eq!(c.stats().queries_superseded, 1);

        // With a truthful predicate on a quiescent corpus the outcome is
        // complete and identical to the synchronous path.
        let outcome = c.query_module_cancellable("alpha", 3, |pinned| c.epoch() != pinned).unwrap();
        let (epoch, results) = c.query_module("alpha", 3).unwrap();
        assert_eq!(outcome, QueryOutcome::Complete { epoch, results });
    }

    #[test]
    fn combine_rejects_conflicting_globals() {
        let mut a = Module::new("a");
        let i32t = a.types.int(32);
        a.add_global(f3m_ir::module::Global { name: "g".into(), ty: i32t, init: vec![1] });
        let mut b = Module::new("b");
        let i32t_b = b.types.int(32);
        b.add_global(f3m_ir::module::Global { name: "g".into(), ty: i32t_b, init: vec![2] });
        let err = combine_modules(&[&a, &b]).unwrap_err();
        assert!(err.contains("different type or initializer"), "{err}");
        // Identical globals deduplicate fine.
        let mut b2 = Module::new("b2");
        let i32t_b2 = b2.types.int(32);
        b2.add_global(f3m_ir::module::Global { name: "g".into(), ty: i32t_b2, init: vec![1] });
        let combined = combine_modules(&[&a, &b2]).unwrap();
        assert_eq!(combined.num_globals(), 1);
    }
}
