//! Pass reporting: per-stage timing, aggregate statistics and the per-pair
//! attempt log, plus a machine-readable JSON rendering.
//!
//! The stage split (*preprocess* / *rank* / *align* / *codegen*, each with
//! success and fail buckets) mirrors the paper's Figures 3 and 13, and the
//! figure-reproduction binaries in `f3m-bench` consume these fields
//! directly — their semantics are part of the crate's stable surface.
//! Every strategy populates them identically through the
//! [`CandidateSearch`](crate::rank::CandidateSearch) seam.

use std::time::Duration;

use f3m_ir::ids::FuncId;
use f3m_trace::MetricsRegistry;

/// Wall-clock cost of a pipeline stage, split by eventual outcome.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTime {
    /// Time attributed to attempts that ended in a committed merge.
    pub success: Duration,
    /// Time attributed to attempts that did not.
    pub fail: Duration,
}

impl StageTime {
    /// Total time in the stage.
    pub fn total(&self) -> Duration {
        self.success + self.fail
    }
}

/// Aggregate statistics of one pass run.
#[derive(Clone, Debug, Default)]
pub struct MergeStats {
    /// Function definitions considered.
    pub functions: usize,
    /// Candidate pairs for which alignment was attempted.
    pub pairs_attempted: usize,
    /// Merges committed (pairs replaced by thunks + merged function).
    pub merges_committed: usize,
    /// Fingerprint construction time.
    pub preprocess: Duration,
    /// Candidate search time.
    pub rank: StageTime,
    /// Block pairing / alignment time.
    pub align: StageTime,
    /// Merged-function generation, verification and profitability time.
    pub codegen: StageTime,
    /// Waves executed by the merge loop (each wave speculatively ranks and
    /// aligns every still-available function, then commits serially).
    pub waves: u64,
    /// Candidate pairs aligned speculatively on the worker pool.
    pub aligns_speculative: u64,
    /// Speculative alignments consumed by the serial commit walk (the pair
    /// survived to the profitability gate / commit attempt).
    pub aligns_reused: u64,
    /// Speculative alignments discarded because one side of the pair was
    /// consumed by an earlier commit in the same wave.
    pub aligns_wasted: u64,
    /// Wave conflicts: pairs whose *partner* was consumed earlier in the
    /// wave; the function is deferred and re-ranked in the next wave.
    pub wave_conflicts: u64,
    /// Alignment attempts served from the per-function `BlockParts` cache
    /// (two lookups per aligned pair).
    pub block_parts_cache_hits: u64,
    /// Alignment attempts that had to re-encode a function because its
    /// cache slot was invalid.
    pub block_parts_cache_misses: u64,
    /// Number of fingerprint-to-fingerprint similarity computations.
    pub fingerprint_comparisons: u64,
    /// Search-structure entries examined across all queries: bucket
    /// entries for LSH (what the paper's bucket cap bounds), scan length
    /// for the exhaustive baseline.
    pub candidates_examined: u64,
    /// Distinct candidates the search structure returned across all
    /// queries, before availability/threshold filtering.
    pub candidates_returned: u64,
    /// Bucket entries skipped by the LSH bucket cap across all queries
    /// (zero for the exhaustive baseline).
    pub bucket_evictions: u64,
    /// Cross-band duplicate bucket hits across all LSH probes: an entry
    /// examined again in a later band of the same query (zero for the
    /// exhaustive baseline). High collision counts mean the band keys are
    /// redundant for the corpus — a backend-quality signal.
    pub probe_collisions: u64,
    /// Per-probe allocations avoided by the reusable query scratch (one
    /// dedup set + candidate vector per query served; zero for the
    /// exhaustive baseline). Job-count independent by construction.
    pub lsh_allocs_saved: u64,
    /// Alignment work: DP cells computed plus linear-alignment positions
    /// advanced, summed over every alignment of the pass. A pure function
    /// of which pairs were aligned, so deterministic and job-count
    /// independent.
    pub align_cells: u64,
    /// Commits rejected because the code generator could not build the
    /// merged body.
    pub commits_rejected_build: u64,
    /// Commits rejected because the merged body failed verification.
    pub commits_rejected_verify: u64,
    /// Commits rejected by the size-profitability gate.
    pub commits_rejected_size: u64,
    /// Non-empty LSH buckets right after the index build (zero for the
    /// exhaustive baseline).
    pub lsh_buckets: u64,
    /// Population of the fullest LSH bucket right after the index build.
    pub lsh_max_bucket: u64,
    /// Bytes of packed struct-of-arrays fingerprint storage per indexed
    /// function (signature pool plus band-key pool; zero for the
    /// exhaustive baseline). A pure function of the search parameters.
    pub soa_bytes_per_fn: u64,
    /// Estimated module text size before the pass.
    pub size_before: u64,
    /// Estimated module text size after the pass.
    pub size_after: u64,
}

/// The exact top-level key set of [`MergeStats::to_json`], in emission
/// order. Tests assert the JSON and this catalog never drift apart;
/// downstream consumers (bench figure scripts, the regression gate) may
/// rely on exactly these keys being present.
pub const STATS_JSON_KEYS: &[&str] = &[
    "functions",
    "pairs_attempted",
    "merges_committed",
    "preprocess_ns",
    "rank",
    "align",
    "codegen",
    "total_ns",
    "waves",
    "aligns_speculative",
    "aligns_reused",
    "aligns_wasted",
    "wave_conflicts",
    "block_parts_cache_hits",
    "block_parts_cache_misses",
    "fingerprint_comparisons",
    "candidates_examined",
    "candidates_returned",
    "bucket_evictions",
    "probe_collisions",
    "lsh_allocs_saved",
    "align_cells",
    "commits_rejected_build",
    "commits_rejected_verify",
    "commits_rejected_size",
    "lsh_buckets",
    "lsh_max_bucket",
    "soa_bytes_per_fn",
    "size_before",
    "size_after",
    "size_reduction",
];

impl MergeStats {
    /// Total time spent in the merging pass.
    pub fn total_time(&self) -> Duration {
        self.preprocess + self.rank.total() + self.align.total() + self.codegen.total()
    }

    /// Code-size reduction as a fraction of the original size
    /// (positive = smaller module).
    pub fn size_reduction(&self) -> f64 {
        if self.size_before == 0 {
            return 0.0;
        }
        1.0 - self.size_after as f64 / self.size_before as f64
    }

    /// Registers and populates every statistic as a metric under
    /// `<prefix>.`. Work counts are tagged deterministic (they gate in the
    /// perf-regression test); wall-clock `*_ns` readings are not.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let det = |reg: &mut MetricsRegistry, name: &str, unit, v: u64| {
            let id = reg.counter(&format!("{prefix}.{name}"), unit, true);
            reg.set(id, v);
        };
        det(reg, "functions", "functions", self.functions as u64);
        det(reg, "pairs_attempted", "pairs", self.pairs_attempted as u64);
        det(reg, "merges_committed", "merges", self.merges_committed as u64);
        det(reg, "waves", "waves", self.waves);
        det(reg, "aligns_speculative", "alignments", self.aligns_speculative);
        det(reg, "aligns_reused", "alignments", self.aligns_reused);
        det(reg, "aligns_wasted", "alignments", self.aligns_wasted);
        det(reg, "wave_conflicts", "pairs", self.wave_conflicts);
        det(reg, "block_parts_cache_hits", "lookups", self.block_parts_cache_hits);
        det(reg, "block_parts_cache_misses", "lookups", self.block_parts_cache_misses);
        det(reg, "fingerprint_comparisons", "comparisons", self.fingerprint_comparisons);
        det(reg, "candidates_examined", "entries", self.candidates_examined);
        det(reg, "candidates_returned", "candidates", self.candidates_returned);
        det(reg, "bucket_evictions", "entries", self.bucket_evictions);
        det(reg, "probe_collisions", "entries", self.probe_collisions);
        det(reg, "lsh_allocs_saved", "allocations", self.lsh_allocs_saved);
        det(reg, "align_cells", "cells", self.align_cells);
        det(reg, "commits_rejected_build", "commits", self.commits_rejected_build);
        det(reg, "commits_rejected_verify", "commits", self.commits_rejected_verify);
        det(reg, "commits_rejected_size", "commits", self.commits_rejected_size);
        det(reg, "lsh_buckets", "buckets", self.lsh_buckets);
        det(reg, "lsh_max_bucket", "functions", self.lsh_max_bucket);
        det(reg, "soa_bytes_per_fn", "bytes", self.soa_bytes_per_fn);
        det(reg, "size_before", "size-units", self.size_before);
        det(reg, "size_after", "size-units", self.size_after);
        let red = reg.gauge(&format!("{prefix}.size_reduction"), "fraction", true);
        reg.set_gauge(red, self.size_reduction());
        let wall = |reg: &mut MetricsRegistry, name: &str, d: Duration| {
            let id = reg.counter(&format!("{prefix}.{name}"), "ns", false);
            reg.set(id, d.as_nanos() as u64);
        };
        wall(reg, "preprocess_ns", self.preprocess);
        wall(reg, "rank_success_ns", self.rank.success);
        wall(reg, "rank_fail_ns", self.rank.fail);
        wall(reg, "align_success_ns", self.align.success);
        wall(reg, "align_fail_ns", self.align.fail);
        wall(reg, "codegen_success_ns", self.codegen.success);
        wall(reg, "codegen_fail_ns", self.codegen.fail);
        wall(reg, "total_ns", self.total_time());
    }

    /// Renders the statistics as one JSON object (the `stats` value of
    /// [`MergeReport::to_json`]; also emitted standalone by the bench
    /// harness's `BENCH_pass.json`).
    pub fn to_json(&self) -> String {
        let stage = |st: &StageTime| {
            format!(
                "{{\"success_ns\":{},\"fail_ns\":{}}}",
                st.success.as_nanos(),
                st.fail.as_nanos()
            )
        };
        let mut out = String::with_capacity(1024);
        out.push('{');
        out.push_str(&format!("\"functions\":{},", self.functions));
        out.push_str(&format!("\"pairs_attempted\":{},", self.pairs_attempted));
        out.push_str(&format!("\"merges_committed\":{},", self.merges_committed));
        out.push_str(&format!("\"preprocess_ns\":{},", self.preprocess.as_nanos()));
        out.push_str(&format!("\"rank\":{},", stage(&self.rank)));
        out.push_str(&format!("\"align\":{},", stage(&self.align)));
        out.push_str(&format!("\"codegen\":{},", stage(&self.codegen)));
        out.push_str(&format!("\"total_ns\":{},", self.total_time().as_nanos()));
        out.push_str(&format!("\"waves\":{},", self.waves));
        out.push_str(&format!("\"aligns_speculative\":{},", self.aligns_speculative));
        out.push_str(&format!("\"aligns_reused\":{},", self.aligns_reused));
        out.push_str(&format!("\"aligns_wasted\":{},", self.aligns_wasted));
        out.push_str(&format!("\"wave_conflicts\":{},", self.wave_conflicts));
        out.push_str(&format!(
            "\"block_parts_cache_hits\":{},",
            self.block_parts_cache_hits
        ));
        out.push_str(&format!(
            "\"block_parts_cache_misses\":{},",
            self.block_parts_cache_misses
        ));
        out.push_str(&format!("\"fingerprint_comparisons\":{},", self.fingerprint_comparisons));
        out.push_str(&format!("\"candidates_examined\":{},", self.candidates_examined));
        out.push_str(&format!("\"candidates_returned\":{},", self.candidates_returned));
        out.push_str(&format!("\"bucket_evictions\":{},", self.bucket_evictions));
        out.push_str(&format!("\"probe_collisions\":{},", self.probe_collisions));
        out.push_str(&format!("\"lsh_allocs_saved\":{},", self.lsh_allocs_saved));
        out.push_str(&format!("\"align_cells\":{},", self.align_cells));
        out.push_str(&format!("\"commits_rejected_build\":{},", self.commits_rejected_build));
        out.push_str(&format!("\"commits_rejected_verify\":{},", self.commits_rejected_verify));
        out.push_str(&format!("\"commits_rejected_size\":{},", self.commits_rejected_size));
        out.push_str(&format!("\"lsh_buckets\":{},", self.lsh_buckets));
        out.push_str(&format!("\"lsh_max_bucket\":{},", self.lsh_max_bucket));
        out.push_str(&format!("\"soa_bytes_per_fn\":{},", self.soa_bytes_per_fn));
        out.push_str(&format!("\"size_before\":{},", self.size_before));
        out.push_str(&format!("\"size_after\":{},", self.size_after));
        out.push_str(&format!("\"size_reduction\":{}", json_f64(self.size_reduction())));
        out.push('}');
        out
    }
}

/// One ranked candidate pair and what happened to it.
#[derive(Clone, Debug)]
pub struct AttemptRecord {
    /// The candidate function.
    pub f1: FuncId,
    /// Its selected nearest neighbour.
    pub f2: FuncId,
    /// Fingerprint similarity under the active strategy's metric
    /// (normalized opcode similarity for HyFM, estimated Jaccard for F3M).
    pub similarity: f64,
    /// Fraction of instructions matched by the block-level alignment.
    pub align_ratio: f64,
    /// Whether the merge was size-profitable and committed.
    pub committed: bool,
    /// `size_before - size_after` for this pair (positive = savings);
    /// meaningful only when committed.
    pub size_delta: i64,
    /// Wall-clock spent on this pair after ranking (align + codegen).
    pub time: Duration,
}

/// Full report of a pass run.
#[derive(Clone, Debug, Default)]
pub struct MergeReport {
    /// Aggregate statistics.
    pub stats: MergeStats,
    /// Per-pair attempt log, in processing order.
    pub attempts: Vec<AttemptRecord>,
    /// Sizes of the non-empty LSH buckets right after the index build,
    /// ascending (empty for the exhaustive baseline). Feeds the bucket
    /// occupancy histogram in [`MergeReport::export_metrics`]; kept out of
    /// [`MergeStats`] so the stats stay a flat counter record.
    pub lsh_bucket_sizes: Vec<usize>,
}

/// Inclusive upper bounds of the LSH bucket-occupancy histogram exported
/// by [`MergeReport::export_metrics`] (one overflow bucket follows).
pub const LSH_OCCUPANCY_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

impl MergeReport {
    /// Zeroes every wall-clock field (stage durations and per-attempt
    /// times), leaving only deterministic work counts. The serve daemon
    /// strips reports before rendering `merge` responses so the bytes on
    /// the wire are identical for any `--jobs` setting and machine speed.
    pub fn strip_wall_clock(&mut self) {
        self.stats.preprocess = Duration::ZERO;
        self.stats.rank = StageTime::default();
        self.stats.align = StageTime::default();
        self.stats.codegen = StageTime::default();
        for a in &mut self.attempts {
            a.time = Duration::ZERO;
        }
    }

    /// Registers and populates all metrics of this report under
    /// `<prefix>.`: every [`MergeStats`] field plus the LSH bucket
    /// occupancy histogram.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        self.stats.export_metrics(reg, prefix);
        let h = reg.histogram(
            &format!("{prefix}.lsh_bucket_occupancy"),
            "functions",
            true,
            LSH_OCCUPANCY_BOUNDS,
        );
        reg.observe_many(h, self.lsh_bucket_sizes.iter().map(|&s| s as u64));
    }
    /// Renders the report as a JSON object (two keys: `stats` and
    /// `attempts`). Durations are reported in nanoseconds as integers;
    /// floats use shortest-roundtrip formatting. The serializer is
    /// hand-rolled: every value emitted here is a number, boolean or
    /// array, so no string escaping is required.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.attempts.len() * 128);
        out.push_str("{\"stats\":");
        out.push_str(&self.stats.to_json());
        out.push_str(",\"attempts\":[");
        for (n, a) in self.attempts.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"f1\":{},\"f2\":{},\"similarity\":{},\"align_ratio\":{},\
                 \"committed\":{},\"size_delta\":{},\"time_ns\":{}}}",
                a.f1.index(),
                a.f2.index(),
                json_f64(a.similarity),
                json_f64(a.align_ratio),
                a.committed,
                a.size_delta,
                a.time.as_nanos()
            ));
        }
        out.push_str("]}");
        out
    }
}

/// JSON has no NaN/Infinity literals; clamp them to null-free sentinels.
pub(crate) fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_has_expected_keys_and_balanced_braces() {
        let mut report = MergeReport::default();
        report.stats.functions = 3;
        report.stats.merges_committed = 1;
        report.stats.preprocess = Duration::from_nanos(1500);
        report.attempts.push(AttemptRecord {
            f1: FuncId::from_index(0),
            f2: FuncId::from_index(2),
            similarity: 0.75,
            align_ratio: 0.5,
            committed: true,
            size_delta: 42,
            time: Duration::from_nanos(900),
        });
        report.stats.waves = 2;
        report.stats.aligns_speculative = 5;
        report.stats.block_parts_cache_hits = 10;
        let j = report.to_json();
        for key in [
            "\"stats\"",
            "\"functions\":3",
            "\"merges_committed\":1",
            "\"preprocess_ns\":1500",
            "\"candidates_examined\"",
            "\"candidates_returned\"",
            "\"waves\":2",
            "\"aligns_speculative\":5",
            "\"aligns_reused\"",
            "\"aligns_wasted\"",
            "\"wave_conflicts\"",
            "\"block_parts_cache_hits\":10",
            "\"block_parts_cache_misses\"",
            "\"attempts\"",
            "\"f1\":0",
            "\"f2\":2",
            "\"similarity\":0.75",
            "\"committed\":true",
            "\"size_delta\":42",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn strip_wall_clock_zeroes_every_duration() {
        let mut report = MergeReport::default();
        report.stats.preprocess = Duration::from_nanos(1500);
        report.stats.rank =
            StageTime { success: Duration::from_nanos(10), fail: Duration::from_nanos(20) };
        report.stats.align =
            StageTime { success: Duration::from_nanos(30), fail: Duration::from_nanos(40) };
        report.stats.codegen =
            StageTime { success: Duration::from_nanos(50), fail: Duration::from_nanos(60) };
        report.stats.merges_committed = 1;
        report.attempts.push(AttemptRecord {
            f1: FuncId::from_index(0),
            f2: FuncId::from_index(1),
            similarity: 0.9,
            align_ratio: 0.8,
            committed: true,
            size_delta: 7,
            time: Duration::from_nanos(900),
        });
        let mut twin = report.clone();
        twin.stats.preprocess = Duration::from_nanos(999_999);
        twin.attempts[0].time = Duration::from_nanos(123_456);
        report.strip_wall_clock();
        twin.strip_wall_clock();
        assert_eq!(report.stats.total_time(), Duration::ZERO);
        assert_eq!(report.attempts[0].time, Duration::ZERO);
        // Two runs that differ only in timing render byte-identically.
        assert_eq!(report.to_json(), twin.to_json());
        assert!(report.to_json().contains("\"preprocess_ns\":0"));
        // Work counts survive.
        assert!(report.to_json().contains("\"merges_committed\":1"));
    }

    /// Keys of the outermost object of `json`, in order. The stats JSON
    /// holds no string *values*, so every depth-1 quoted token followed by
    /// `:` is a key.
    fn top_level_keys(json: &str) -> Vec<String> {
        let bytes = json.as_bytes();
        let mut keys = Vec::new();
        let mut depth = 0i32;
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'{' | b'[' => depth += 1,
                b'}' | b']' => depth -= 1,
                b'"' if depth == 1 => {
                    let start = i + 1;
                    let mut j = start;
                    while bytes[j] != b'"' {
                        j += 1;
                    }
                    if bytes.get(j + 1) == Some(&b':') {
                        keys.push(json[start..j].to_string());
                    }
                    i = j;
                }
                _ => {}
            }
            i += 1;
        }
        keys
    }

    #[test]
    fn stats_json_emits_exactly_the_documented_key_set() {
        let keys = top_level_keys(&MergeStats::default().to_json());
        assert_eq!(
            keys, STATS_JSON_KEYS,
            "MergeStats::to_json and STATS_JSON_KEYS drifted apart; \
             update both (and DESIGN.md's metric catalog) together"
        );
        // Populated stats must not grow or reorder keys either.
        let mut s = MergeStats { functions: 9, waves: 3, ..Default::default() };
        s.size_before = 100;
        s.size_after = 80;
        assert_eq!(top_level_keys(&s.to_json()), STATS_JSON_KEYS);
    }

    #[test]
    fn export_metrics_mirrors_stats_and_tags_wall_clock_nondeterministic() {
        let mut report = MergeReport::default();
        report.stats.fingerprint_comparisons = 77;
        report.stats.preprocess = Duration::from_nanos(123);
        report.lsh_bucket_sizes = vec![1, 1, 3, 200];
        let mut reg = MetricsRegistry::new();
        report.export_metrics(&mut reg, "pass");
        let snaps = reg.snapshots();
        let get = |name: &str| {
            snaps
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        assert_eq!(get("pass.fingerprint_comparisons").value, 77.0);
        assert!(get("pass.fingerprint_comparisons").deterministic);
        assert_eq!(get("pass.preprocess_ns").value, 123.0);
        assert!(
            !get("pass.preprocess_ns").deterministic,
            "wall-clock metrics must not participate in the regression gate"
        );
        let (bounds, counts, count) =
            get("pass.lsh_bucket_occupancy").histogram.clone().unwrap();
        assert_eq!(bounds, LSH_OCCUPANCY_BOUNDS);
        assert_eq!(count, 4);
        assert_eq!(*counts.last().unwrap(), 1, "bucket of 200 lands in overflow");
        // Every deterministic stats key is represented as a metric.
        for key in STATS_JSON_KEYS {
            if key.ends_with("_ns") || matches!(*key, "rank" | "align" | "codegen") {
                continue;
            }
            assert!(
                snaps.iter().any(|s| s.name == format!("pass.{key}")),
                "stats key {key} has no exported metric"
            );
        }
    }

    #[test]
    fn non_finite_floats_are_sanitized() {
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(0.25), "0.25");
    }

    #[test]
    fn stage_and_total_time_arithmetic() {
        let mut s = MergeStats {
            preprocess: Duration::from_millis(2),
            rank: StageTime { success: Duration::from_millis(3), fail: Duration::from_millis(1) },
            ..Default::default()
        };
        assert_eq!(s.rank.total(), Duration::from_millis(4));
        assert_eq!(s.total_time(), Duration::from_millis(6));
        s.size_before = 200;
        s.size_after = 150;
        assert!((s.size_reduction() - 0.25).abs() < 1e-12);
    }
}
