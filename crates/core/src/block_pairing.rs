//! Pairing basic blocks between two candidate functions.
//!
//! HyFM aligns code at the basic-block level: blocks of the two functions
//! are paired by similarity and each pair is aligned with the cheap linear
//! strategy ([`crate::align::linear_block_align`]). Blocks with no good
//! counterpart stay unpaired and are cloned verbatim into the merged
//! function, guarded by the function identifier.
//!
//! Encoding a function's blocks into [`BlockParts`] is pure per-function
//! work, so the pass builds a [`BlockPartsCache`] once in the (parallel)
//! preprocess stage and every alignment attempt reads from it instead of
//! re-encoding both functions; entries are invalidated when a commit
//! replaces the function body.

use f3m_fingerprint::encode::encode_inst;
use f3m_fingerprint::par::par_map_indexed;
use f3m_ir::ids::{BlockId, FuncId, InstId};
use f3m_ir::inst::Opcode;
use f3m_ir::function::Function;
use f3m_ir::module::Module;

use crate::align::{linear_block_align_with, AlignScratch, Alignment};

/// Decomposition of one block into phi prefix / body / terminator.
#[derive(Clone, Debug)]
pub struct BlockParts {
    /// Leading phi instructions.
    pub phis: Vec<InstId>,
    /// Non-phi, non-terminator instructions.
    pub body: Vec<InstId>,
    /// Encoded body (parallel to `body`).
    pub body_codes: Vec<u32>,
    /// The terminator.
    pub term: InstId,
    /// Encoded terminator.
    pub term_code: u32,
}

/// Splits a block into parts.
///
/// # Panics
///
/// Panics if the block has no terminator (unverified function).
pub fn block_parts(f: &Function, bb: BlockId) -> BlockParts {
    let insts = &f.block(bb).insts;
    let term = *insts.last().expect("empty block");
    assert!(f.inst(term).is_terminator(), "block without terminator");
    let mut phis = Vec::new();
    let mut body = Vec::new();
    for &i in &insts[..insts.len() - 1] {
        if f.inst(i).op == Opcode::Phi {
            phis.push(i);
        } else {
            body.push(i);
        }
    }
    let body_codes = body.iter().map(|&i| encode_inst(f, f.inst(i))).collect();
    BlockParts {
        phis,
        body,
        body_codes,
        term,
        term_code: encode_inst(f, f.inst(term)),
    }
}

/// All of one function's blocks split into [`BlockParts`], in block order.
#[derive(Clone, Debug)]
pub struct FunctionParts {
    /// `(block, parts)` for every block, in `block_order`.
    pub blocks: Vec<(BlockId, BlockParts)>,
}

/// Splits every block of `f` (the per-function unit of work the
/// [`BlockPartsCache`] parallelizes over).
pub fn function_parts(f: &Function) -> FunctionParts {
    FunctionParts {
        blocks: f.block_order.iter().map(|&b| (b, block_parts(f, b))).collect(),
    }
}

/// Per-function cache of encoded [`FunctionParts`], indexed by the pass's
/// function index. Built once in the preprocess stage (in parallel across
/// `jobs` threads), then shared read-only across alignment workers;
/// entries are invalidated when a commit replaces the function body.
pub struct BlockPartsCache {
    slots: Vec<Option<FunctionParts>>,
}

impl BlockPartsCache {
    /// Encodes every function's blocks, fanning out across up to `jobs`
    /// threads (deterministic for any job count).
    pub fn build(m: &Module, funcs: &[FuncId], jobs: usize) -> BlockPartsCache {
        let slots =
            par_map_indexed(funcs.len(), jobs, |i| Some(function_parts(m.function(funcs[i]))));
        BlockPartsCache { slots }
    }

    /// The cached parts for function index `idx`, if still valid.
    pub fn get(&self, idx: usize) -> Option<&FunctionParts> {
        self.slots[idx].as_ref()
    }

    /// Drops the entry for function index `idx` (its body was replaced by
    /// a commit; a consumed function is never aligned again, so the slot
    /// stays empty).
    pub fn invalidate(&mut self, idx: usize) {
        self.slots[idx] = None;
    }

    /// Number of function slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// A planned pairing of two blocks.
#[derive(Clone, Debug)]
pub struct BlockPairPlan {
    /// Block from the first function.
    pub b1: BlockId,
    /// Block from the second function.
    pub b2: BlockId,
    /// Number of leading phi pairs (phi counts must be equal).
    pub phi_pairs: usize,
    /// Alignment of the two bodies.
    pub body: Alignment,
    /// Whether the terminators are mergeable.
    pub term_match: bool,
}

/// The complete block-level merge plan for a function pair.
#[derive(Clone, Debug, Default)]
pub struct PairPlan {
    /// Paired blocks with their alignments.
    pub pairs: Vec<BlockPairPlan>,
    /// Blocks of the first function with no counterpart.
    pub unpaired1: Vec<BlockId>,
    /// Blocks of the second function with no counterpart.
    pub unpaired2: Vec<BlockId>,
}

impl PairPlan {
    /// Total number of matched instructions across all pairs (phis and
    /// terminators included).
    pub fn matched_insts(&self) -> usize {
        self.pairs
            .iter()
            .map(|p| p.phi_pairs + p.body.matches + usize::from(p.term_match))
            .sum()
    }

    /// Number of guard diamonds the code generator will need: one per
    /// maximal mismatched run inside a paired block, plus one per
    /// unmergeable terminator pair.
    pub fn guard_diamonds(&self) -> usize {
        let mut diamonds = 0;
        for p in &self.pairs {
            let mut in_mismatch = false;
            for e in &p.body.entries {
                match e {
                    crate::align::AlignEntry::Match(_, _) => in_mismatch = false,
                    _ => {
                        if !in_mismatch {
                            diamonds += 1;
                            in_mismatch = true;
                        }
                    }
                }
            }
            if !p.term_match {
                diamonds += 1;
            }
        }
        diamonds
    }

    /// Optimistic profitability estimate in bytes, before any code is
    /// generated — HyFM's "if deemed profitable" gate. Matched
    /// instructions are emitted once instead of twice (≈3 bytes saved
    /// each); guard diamonds cost a conditional branch plus two jumps.
    /// Fixed costs (function overhead, entry dispatch, thunks) are passed
    /// in by the caller, which knows the linkage situation.
    pub fn estimated_savings(&self, fixed_costs: i64) -> i64 {
        3 * self.matched_insts() as i64 - 8 * self.guard_diamonds() as i64 - fixed_costs
    }
}

/// Whether two phi *prefixes* are pairwise compatible (same count, same
/// types). Required because phis cannot be split across guard diamonds.
fn phis_compatible(f1: &Function, p1: &[InstId], f2: &Function, p2: &[InstId]) -> bool {
    p1.len() == p2.len()
        && p1
            .iter()
            .zip(p2.iter())
            .all(|(&a, &b)| f1.inst(a).ty == f2.inst(b).ty)
}

/// Whether two instructions can be emitted as one merged instruction.
///
/// Stricter than encoding equality: operand types are compared slot-wise
/// (the encoding folds them into a product, which can collide), predicates
/// and auxiliary types must agree exactly, and target counts must match.
pub fn insts_mergeable(f1: &Function, a: InstId, f2: &Function, b: InstId) -> bool {
    let (ia, ib) = (f1.inst(a), f2.inst(b));
    ia.op == ib.op
        && ia.ty == ib.ty
        && ia.pred == ib.pred
        && ia.aux_ty == ib.aux_ty
        && ia.operands.len() == ib.operands.len()
        && ia.blocks.len() == ib.blocks.len()
        && ia
            .operands
            .iter()
            .zip(ib.operands.iter())
            .all(|(&x, &y)| f1.value(x).ty == f2.value(y).ty)
}

/// Similarity score used to rank candidate block pairs: matched
/// instructions from a linear alignment of the bodies (plus terminator).
/// Scores through the scratch view, so no per-candidate allocation.
fn pair_score(scratch: &mut AlignScratch, parts1: &BlockParts, parts2: &BlockParts) -> (bool, usize) {
    let matches =
        linear_block_align_with(scratch, &parts1.body_codes, &parts2.body_codes).matches;
    let term_match = parts1.term_code == parts2.term_code;
    let score = matches * 2 + usize::from(term_match);
    (term_match, score)
}

/// Builds a greedy block-level merge plan for `(f1, f2)`.
///
/// Blocks of `f1` are visited in order; each takes the highest-scoring
/// still-unpaired block of `f2` whose phi prefix is compatible, provided
/// the pair shares at least one matched instruction.
pub fn plan_blocks(m: &Module, f1: FuncId, f2: FuncId) -> PairPlan {
    let parts1 = function_parts(m.function(f1));
    let parts2 = function_parts(m.function(f2));
    plan_blocks_with(m, f1, f2, &parts1, &parts2, &mut AlignScratch::new())
}

/// [`plan_blocks`] over precomputed [`FunctionParts`] and a reusable
/// [`AlignScratch`]: the allocation- and encoding-free hot path used by
/// the wave loop. Candidate block pairs are *scored* through the scratch
/// (no entries materialized); only each winning pair's alignment is
/// re-run and copied out into the plan.
pub fn plan_blocks_with(
    m: &Module,
    f1: FuncId,
    f2: FuncId,
    parts1: &FunctionParts,
    parts2: &FunctionParts,
    scratch: &mut AlignScratch,
) -> PairPlan {
    let fa = m.function(f1);
    let fb = m.function(f2);
    let parts1 = &parts1.blocks;
    let parts2 = &parts2.blocks;

    let mut taken2 = vec![false; parts2.len()];
    let mut plan = PairPlan::default();

    for (b1, p1) in parts1 {
        let mut best: Option<(usize, bool, usize)> = None; // (idx2, term, score)
        for (idx2, (_, p2)) in parts2.iter().enumerate() {
            if taken2[idx2] {
                continue;
            }
            if !phis_compatible(fa, &p1.phis, fb, &p2.phis) {
                continue;
            }
            let (term_match, score) = pair_score(scratch, p1, p2);
            if score == 0 {
                continue;
            }
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((idx2, term_match, score));
            }
        }
        match best {
            Some((idx2, term_match, _)) => {
                taken2[idx2] = true;
                // Re-align the winner to materialize its entries — one
                // owned alignment per paired block instead of one per
                // candidate considered.
                let body = linear_block_align_with(
                    scratch,
                    &p1.body_codes,
                    &parts2[idx2].1.body_codes,
                )
                .to_owned();
                plan.pairs.push(BlockPairPlan {
                    b1: *b1,
                    b2: parts2[idx2].0,
                    phi_pairs: p1.phis.len(),
                    body,
                    term_match,
                });
            }
            None => plan.unpaired1.push(*b1),
        }
    }
    for (idx2, (b2, _)) in parts2.iter().enumerate() {
        if !taken2[idx2] {
            plan.unpaired2.push(*b2);
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3m_ir::parser::parse_module;

    fn two_funcs(src: &str) -> (Module, FuncId, FuncId) {
        let m = parse_module(src).unwrap();
        let ids = m.defined_functions();
        (m, ids[0], ids[1])
    }

    #[test]
    fn identical_functions_pair_every_block() {
        let (m, f1, f2) = two_funcs(
            r#"
module "t" {
define @a(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = icmp sgt i32 %1, 10
  condbr %2, bb1, bb2
bb1:
  ret i32 %1
bb2:
  %3 = mul i32 %1, 2
  ret i32 %3
}
define @b(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = icmp sgt i32 %1, 10
  condbr %2, bb1, bb2
bb1:
  ret i32 %1
bb2:
  %3 = mul i32 %1, 2
  ret i32 %3
}
}
"#,
        );
        let plan = plan_blocks(&m, f1, f2);
        assert_eq!(plan.pairs.len(), 3);
        assert!(plan.unpaired1.is_empty());
        assert!(plan.unpaired2.is_empty());
        assert!(plan.pairs.iter().all(|p| p.term_match));
        // 3 in bb0 (add, icmp, condbr) + 1 in bb1 (ret) + 2 in bb2.
        assert_eq!(plan.matched_insts(), 6);
    }

    #[test]
    fn dissimilar_functions_stay_unpaired() {
        let (m, f1, f2) = two_funcs(
            r#"
module "t" {
define @a(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  ret i32 %1
}
define @b(f64 %0) -> f64 {
bb0:
  %1 = fmul f64 %0, %0
  %2 = fadd f64 %1, %0
  %3 = fdiv f64 %2, %1
  %4 = call f64 @b(f64 %3)
  ret f64 %4
}
}
"#,
        );
        let plan = plan_blocks(&m, f1, f2);
        // Different types everywhere: nothing aligns.
        assert!(plan.pairs.is_empty());
        assert_eq!(plan.unpaired1.len(), 1);
        assert_eq!(plan.unpaired2.len(), 1);
    }

    #[test]
    fn phi_prefix_compatibility_gates_pairing() {
        let (m, f1, f2) = two_funcs(
            r#"
module "t" {
define @a(i32 %0) -> i32 {
bb0:
  condbr 1, bb1, bb2
bb1:
  br bb2
bb2:
  %1 = phi i32 [ %0, bb0 ], [ 7, bb1 ]
  ret i32 %1
}
define @b(i32 %0) -> i32 {
bb0:
  condbr 1, bb1, bb2
bb1:
  br bb2
bb2:
  ret i32 %0
}
}
"#,
        );
        let plan = plan_blocks(&m, f1, f2);
        // The phi-bearing bb2 of @a cannot pair with the phi-less bb2 of
        // @b; the rest can still pair.
        for p in &plan.pairs {
            let pa = block_parts(m.function(f1), p.b1);
            let pb = block_parts(m.function(f2), p.b2);
            assert_eq!(pa.phis.len(), pb.phis.len());
        }
    }

    #[test]
    fn mergeable_requires_slotwise_operand_types() {
        let (m, f1, f2) = two_funcs(
            r#"
module "t" {
declare @sink2(i32, i64) -> void
declare @sink2b(i64, i32) -> void
define @a(i32 %0, i64 %1) -> void {
bb0:
  call void @sink2(i32 %0, i64 %1)
  ret
}
define @b(i32 %0, i64 %1) -> void {
bb0:
  call void @sink2b(i64 %1, i32 %0)
  ret
}
}
"#,
        );
        let fa = m.function(f1);
        let fb = m.function(f2);
        let c1 = fa.block(fa.entry()).insts[0];
        let c2 = fb.block(fb.entry()).insts[0];
        assert!(
            !insts_mergeable(fa, c1, fb, c2),
            "swapped argument types must not be mergeable even though the \
             encoding product collides"
        );
    }

    #[test]
    fn cached_planner_matches_uncached_planner() {
        let (m, f1, f2) = two_funcs(
            r#"
module "t" {
define @a(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = icmp sgt i32 %1, 10
  condbr %2, bb1, bb2
bb1:
  ret i32 %1
bb2:
  %3 = mul i32 %1, 2
  %4 = xor i32 %3, 9
  ret i32 %4
}
define @b(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = icmp sgt i32 %1, 10
  condbr %2, bb1, bb2
bb1:
  ret i32 %1
bb2:
  %3 = mul i32 %1, 3
  %4 = xor i32 %3, 9
  ret i32 %4
}
}
"#,
        );
        let funcs = [f1, f2];
        let cache = BlockPartsCache::build(&m, &funcs, 2);
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
        let mut scratch = AlignScratch::new();
        let cached = plan_blocks_with(
            &m,
            f1,
            f2,
            cache.get(0).unwrap(),
            cache.get(1).unwrap(),
            &mut scratch,
        );
        let fresh = plan_blocks(&m, f1, f2);
        assert_eq!(cached.pairs.len(), fresh.pairs.len());
        for (c, f) in cached.pairs.iter().zip(fresh.pairs.iter()) {
            assert_eq!((c.b1, c.b2, c.phi_pairs, c.term_match), (f.b1, f.b2, f.phi_pairs, f.term_match));
            assert_eq!(c.body.entries, f.body.entries);
        }
        assert_eq!(cached.unpaired1, fresh.unpaired1);
        assert_eq!(cached.unpaired2, fresh.unpaired2);
        assert_eq!(cached.matched_insts(), fresh.matched_insts());
    }

    #[test]
    fn cache_invalidation_empties_the_slot() {
        let (m, f1, f2) = two_funcs(
            r#"
module "t" {
define @a(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  ret i32 %1
}
define @b(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 2
  ret i32 %1
}
}
"#,
        );
        let mut cache = BlockPartsCache::build(&m, &[f1, f2], 1);
        assert!(cache.get(0).is_some());
        cache.invalidate(0);
        assert!(cache.get(0).is_none());
        assert!(cache.get(1).is_some());
    }

    #[test]
    fn partial_overlap_produces_partial_alignment() {
        let (m, f1, f2) = two_funcs(
            r#"
module "t" {
define @a(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = mul i32 %1, 3
  %3 = sub i32 %2, %0
  ret i32 %3
}
define @b(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = xor i32 %1, 3
  %3 = sub i32 %2, %0
  ret i32 %3
}
}
"#,
        );
        let plan = plan_blocks(&m, f1, f2);
        assert_eq!(plan.pairs.len(), 1);
        let p = &plan.pairs[0];
        assert_eq!(p.body.matches, 2, "add and sub match; mul vs xor does not");
        assert!(p.term_match);
    }
}
