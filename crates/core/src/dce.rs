//! Dead-code elimination.
//!
//! A small cleanup pass run after merging (real pipelines run DCE and
//! `simplifycfg` after the merger too): deletes instructions whose results
//! are unused and that have no side effects, plus blocks that became
//! unreachable. Guard diamonds and dominance repair occasionally leave
//! such residue behind (e.g. a cloned computation whose only use was on
//! the other side's path).

use std::collections::HashSet;

use f3m_ir::cfg::Cfg;
use f3m_ir::ids::{FuncId, InstId};
use f3m_ir::inst::Opcode;
use f3m_ir::module::Module;

/// Whether an instruction can be deleted when its result is unused.
fn is_removable(op: Opcode) -> bool {
    !(op.is_terminator()
        || matches!(op, Opcode::Store | Opcode::Call | Opcode::Invoke))
}

/// Removes dead instructions from one function. Returns the number of
/// instructions deleted.
pub fn dce_function(m: &mut Module, fid: FuncId) -> usize {
    let mut removed_total = 0;
    loop {
        let f = m.function(fid);
        if f.is_declaration {
            return removed_total;
        }
        // Collect the set of used values.
        let mut used: HashSet<f3m_ir::ids::ValueId> = HashSet::new();
        for (_, inst) in f.linked_insts() {
            for &op in &inst.operands {
                used.insert(op);
            }
        }
        // Find dead instructions.
        let mut dead: Vec<InstId> = Vec::new();
        for (iid, inst) in f.linked_insts() {
            if !is_removable(inst.op) {
                continue;
            }
            match inst.result {
                Some(r) if !used.contains(&r) => dead.push(iid),
                None => dead.push(iid), // removable op with no result
                _ => {}
            }
        }
        if dead.is_empty() {
            return removed_total;
        }
        removed_total += dead.len();
        let dead_set: HashSet<InstId> = dead.into_iter().collect();
        let f = m.function_mut(fid);
        let blocks: Vec<_> = f.block_order.clone();
        for bb in blocks {
            f.block_mut(bb).insts.retain(|i| !dead_set.contains(i));
        }
        // Iterate: removing uses may make more instructions dead.
    }
}

/// Removes unreachable blocks from one function (they cannot execute, and
/// pruning them lets the size model credit the cleanup). Returns the
/// number of blocks removed.
pub fn prune_unreachable(m: &mut Module, fid: FuncId) -> usize {
    let f = m.function(fid);
    if f.is_declaration || f.block_order.is_empty() {
        return 0;
    }
    let cfg = Cfg::compute(f);
    let dead: Vec<_> = f.block_order.iter().copied().filter(|&b| !cfg.is_reachable(b)).collect();
    if dead.is_empty() {
        return 0;
    }
    let n = dead.len();
    let f = m.function_mut(fid);
    // Unlink the blocks and empty them so their instructions no longer
    // count as linked.
    f.block_order.retain(|b| !dead.contains(b));
    for b in dead {
        f.block_mut(b).insts.clear();
    }
    // Phis may reference removed predecessors; the verifier's pred sets
    // shrink identically because the edges are gone, so remaining phis
    // stay consistent (unreachable incoming blocks no longer appear as
    // preds nor as phi entries — they were only reachable *from* the dead
    // blocks).
    n
}

/// Runs DCE + unreachable-block pruning over every function. Returns
/// `(instructions removed, blocks removed)`.
pub fn dce_module(m: &mut Module) -> (usize, usize) {
    let mut insts = 0;
    let mut blocks = 0;
    for fid in m.defined_functions() {
        blocks += prune_unreachable(m, fid);
        insts += dce_function(m, fid);
    }
    (insts, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3m_ir::parser::parse_module;
    use f3m_ir::verify::verify_module;

    #[test]
    fn removes_unused_pure_instructions() {
        let mut m = parse_module(
            r#"
module "t" {
define @f(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = mul i32 %0, 99
  %3 = xor i32 %2, 5
  ret i32 %1
}
}
"#,
        )
        .unwrap();
        let fid = m.lookup_function("f").unwrap();
        let removed = dce_function(&mut m, fid);
        assert_eq!(removed, 2, "the mul/xor chain is dead");
        verify_module(&m).unwrap();
        assert_eq!(m.function(fid).num_linked_insts(), 2);
    }

    #[test]
    fn keeps_side_effects() {
        let mut m = parse_module(
            r#"
module "t" {
declare @ext_sink_i32(i32) -> void
define @f(i32 %0) -> i32 {
bb0:
  %1 = alloca i32
  store i32 %0, %1
  call void @ext_sink_i32(i32 %0)
  %2 = call i32 @f(i32 %0)
  ret i32 %0
}
}
"#,
        )
        .unwrap();
        let fid = m.lookup_function("f").unwrap();
        let before = m.function(fid).num_linked_insts();
        dce_function(&mut m, fid);
        // The unused call result must not be deleted (calls may have side
        // effects); stores likewise. Only nothing here is deletable.
        assert_eq!(m.function(fid).num_linked_insts(), before);
        verify_module(&m).unwrap();
    }

    #[test]
    fn dce_is_transitive() {
        let mut m = parse_module(
            r#"
module "t" {
define @f(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  %2 = mul i32 %1, 2
  %3 = xor i32 %2, 3
  ret i32 %0
}
}
"#,
        )
        .unwrap();
        let fid = m.lookup_function("f").unwrap();
        assert_eq!(dce_function(&mut m, fid), 3, "whole chain dies bottom-up");
        verify_module(&m).unwrap();
    }

    #[test]
    fn prunes_unreachable_blocks() {
        let mut m = parse_module(
            r#"
module "t" {
define @f(i32 %0) -> i32 {
bb0:
  ret i32 %0
bb1:
  %1 = add i32 %0, 1
  ret i32 %1
}
}
"#,
        )
        .unwrap();
        let fid = m.lookup_function("f").unwrap();
        let before = f3m_ir::size::function_size(m.function(fid));
        assert_eq!(prune_unreachable(&mut m, fid), 1);
        verify_module(&m).unwrap();
        assert!(f3m_ir::size::function_size(m.function(fid)) < before);
    }

    #[test]
    fn module_level_dce_covers_all_functions() {
        let mut m = parse_module(
            r#"
module "t" {
define @a(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 2
  ret i32 %0
}
define @b(i32 %0) -> i32 {
bb0:
  %1 = mul i32 %0, 2
  ret i32 %0
}
}
"#,
        )
        .unwrap();
        let (insts, blocks) = dce_module(&mut m);
        assert_eq!(insts, 2);
        assert_eq!(blocks, 0);
        verify_module(&m).unwrap();
    }
}

#[cfg(test)]
mod prune_regression_tests {
    use super::*;
    use f3m_ir::parser::parse_module;
    use f3m_ir::verify::verify_module;

    /// Regression: pruning a block in the *middle* of the arena used to
    /// leave CFG/dominator tables sized by the shortened block order while
    /// still indexed by arena ids, panicking on the next analysis.
    #[test]
    fn pruning_middle_blocks_keeps_analyses_working() {
        let mut m = parse_module(
            r#"
module "t" {
define @f(i32 %0) -> i32 {
bb0:
  br bb2
bb1:
  %1 = add i32 %0, 1
  ret i32 %1
bb2:
  %2 = mul i32 %0, 2
  ret i32 %2
}
}
"#,
        )
        .unwrap();
        let fid = m.lookup_function("f").unwrap();
        assert_eq!(prune_unreachable(&mut m, fid), 1);
        // All analyses must still work on the pruned function.
        verify_module(&m).unwrap();
        let f = m.function(fid);
        let cfg = f3m_ir::cfg::Cfg::compute(f);
        let dt = f3m_ir::dom::DomTree::compute(f, &cfg);
        assert!(dt.dominates(f.entry(), f.block_order[1]));
        assert_eq!(f.num_blocks(), 2);
        assert_eq!(f.block_arena_len(), 3);
    }
}
