//! Candidate search behind a strategy seam.
//!
//! The *preprocess* and *rank* stages of the pipeline differ per strategy
//! (HyFM scans opcode-frequency fingerprints exhaustively; F3M queries an
//! LSH index over signature fingerprints) but the driver does not care: it
//! asks a [`CandidateSearch`] for the best available candidates of one
//! function and tells it when a pair leaves the pool. Each implementation
//! owns its fingerprints, its query structure, and its post-commit
//! invalidation, and builds them in parallel across `jobs` threads with
//! deterministic (job-count-independent) results.
//!
//! The LSH search is generic over [fingerprint
//! backends](f3m_fingerprint::backend) — MinHash (default), SimHash, or a
//! TLSH-style hash, per `MergeParams::backend` — and keeps its signatures
//! and band keys in a [`PackedFingerprintStore`] (two contiguous pools
//! indexed by function id) instead of per-function `Vec`s, so the build
//! writes and the probes read cache-linear memory.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use f3m_fingerprint::adaptive::MergeParams;
use f3m_fingerprint::backend::{backend_for, signature_similarity};
use f3m_fingerprint::encode::encode_function;
use f3m_fingerprint::lsh::{band_keys_for, probe_keys_for, BandKey, LshIndex, QueryScratch};
use f3m_fingerprint::opcode_freq::OpcodeFingerprint;
use f3m_fingerprint::par::par_map_indexed;
use f3m_fingerprint::store::PackedFingerprintStore;
use f3m_ir::ids::FuncId;
use f3m_ir::module::Module;

use crate::pass::Strategy;
use crate::profile::CandidateSet;

/// Near-tie tolerance for profile-guided selection (no effect without a
/// profile: the plain maximum is chosen).
const NEAR_TIE_EPS: f64 = 0.05;

/// Counters for one ranking query, accumulated into
/// [`MergeStats`](crate::report::MergeStats) by the driver.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryCounters {
    /// Fingerprint-to-fingerprint similarity computations.
    pub comparisons: u64,
    /// Search-structure entries examined (bucket entries for LSH, scan
    /// length for the exhaustive baseline).
    pub examined: u64,
    /// Distinct candidates the structure returned, before availability and
    /// threshold filtering.
    pub returned: u64,
    /// Bucket entries skipped by the LSH `bucket_cap` (always zero for the
    /// exhaustive baseline). Deterministic because buckets are sorted.
    pub evicted: u64,
    /// Cross-band duplicate bucket hits during LSH probes (an entry found
    /// again in a later band of the same query).
    pub collisions: u64,
    /// Allocations avoided by answering the query from a reusable scratch
    /// buffer instead of a fresh dedup set + candidate vector (one per
    /// scratch-served probe, so the count is job-count independent).
    pub saved_allocs: u64,
}

/// A point-in-time description of a search structure, for observability
/// exports (metric registry, trace args). All values are deterministic for
/// a fixed workload and strategy.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IndexStats {
    /// Non-empty buckets in the structure (0 for the exhaustive baseline).
    pub buckets: usize,
    /// Population of the fullest bucket.
    pub max_bucket: usize,
    /// Sizes of all non-empty buckets, for occupancy histograms.
    pub bucket_sizes: Vec<usize>,
    /// Fixed per-function bytes of the packed fingerprint storage (0 for
    /// structures without packed storage).
    pub bytes_per_fn: usize,
}

/// Reusable per-worker buffers for [`CandidateSearch::best_candidates`].
/// One scratch lives beside each wave worker's alignment scratch, so the
/// hot rank loop performs no per-query allocation.
#[derive(Debug, Default)]
pub struct SearchScratch {
    query: QueryScratch<usize>,
}

impl SearchScratch {
    pub fn new() -> SearchScratch {
        SearchScratch { query: QueryScratch::new() }
    }
}

/// Strategy seam between the pass driver and a candidate-search structure.
///
/// Implementations are built once per pass over the function list (the
/// *preprocess* stage) and queried once per unmerged function (the *rank*
/// stage). After a commit the driver calls [`invalidate`] for both merged
/// functions so later queries no longer surface them.
///
/// [`invalidate`]: CandidateSearch::invalidate
pub trait CandidateSearch {
    /// Number of functions indexed.
    fn num_functions(&self) -> usize;

    /// Collects the best available merge candidates for function `i` as a
    /// near-tie [`CandidateSet`] (so a profile can bias the final choice).
    /// `available[j]` is false for functions already consumed by a merge;
    /// implementations must never return such candidates, nor `i` itself.
    /// `scratch` is the caller's reusable query buffer (one per worker).
    fn best_candidates(
        &self,
        i: usize,
        available: &[bool],
        counters: &mut QueryCounters,
        scratch: &mut SearchScratch,
    ) -> CandidateSet;

    /// Removes function `idx` from the search structure after its pair was
    /// committed. (The driver additionally masks it in `available`; for
    /// structures with no retained state this may be a no-op.)
    fn invalidate(&mut self, idx: usize);

    /// The top-`k` available candidates for function `i`, as
    /// `(index, similarity)` pairs sorted by similarity descending with
    /// function *name* ascending as the tie-break (index ascending as the
    /// final fallback — unreachable while names are unique, which the IR
    /// verifier enforces per module). Unlike [`Self::best_candidates`]
    /// this exposes the full ranking (not just the near-tie head), which
    /// is what corpus-level `query` requests serve; the tie-break rule is
    /// part of the wire contract, so both implementations share it. Names
    /// survive a from-scratch rebuild where indexes do not, so rankings —
    /// and everything planned from them, like the global merge order —
    /// are identical across shard counts and rebuilds.
    fn ranked_candidates(&self, i: usize, available: &[bool], k: usize) -> Vec<(usize, f64)>;

    /// Describes the current search structure for observability exports.
    /// The default (for structures with no retained index) is all-zero.
    fn index_stats(&self) -> IndexStats {
        IndexStats::default()
    }
}

/// The shared ordering rule behind [`CandidateSearch::ranked_candidates`]:
/// similarity descending, then function name ascending, then index
/// ascending as the (unreachable while names are unique) final fallback.
/// Index-based tie-breaks are *not* rebuild-stable — a from-scratch
/// rebuild that assigns ids differently would reorder exact-tie
/// candidates, and similarities are multiples of `1/k`, so exact ties are
/// common. Every `ranked_candidates` implementation must sort through
/// this helper so the corpus, the daemon and the global merge planner
/// agree on one rebuild-stable order.
fn sort_ranked(ranked: &mut [(usize, f64)], names: &[String]) {
    ranked.sort_by(|a, b| {
        b.1.total_cmp(&a.1)
            .then_with(|| names[a.0].cmp(&names[b.0]))
            .then(a.0.cmp(&b.0))
    });
}

/// Snapshots the (unqualified within one module, qualified in a combined
/// corpus module) function names backing a search structure, for the
/// rebuild-stable tie-break in [`sort_ranked`].
fn capture_names(m: &Module, funcs: &[FuncId]) -> Vec<String> {
    funcs.iter().map(|&f| m.function(f).name.clone()).collect()
}

/// Builds the search structure for `strategy` over `funcs`, fanning the
/// per-function fingerprint work out across up to `jobs` threads.
///
/// The returned structure is `Send + Sync`: queries take `&self`, so the
/// wave loop can rank many functions concurrently against one snapshot of
/// the availability mask (mutation — `invalidate` — stays confined to the
/// serial commit walk).
pub fn build_search(
    m: &Module,
    funcs: &[FuncId],
    strategy: &Strategy,
    jobs: usize,
) -> Box<dyn CandidateSearch + Send + Sync> {
    match strategy {
        Strategy::Hyfm => Box::new(ExhaustiveOpcodeSearch::build(m, funcs, jobs)),
        Strategy::F3m(p) => Box::new(LshBackendSearch::build(m, funcs, *p, jobs)),
        Strategy::F3mAdaptive => {
            let p = MergeParams::adaptive(funcs.len());
            Box::new(LshBackendSearch::build(m, funcs, p, jobs))
        }
    }
}

impl CandidateSearch for Box<dyn CandidateSearch + Send + Sync> {
    fn num_functions(&self) -> usize {
        (**self).num_functions()
    }

    fn best_candidates(
        &self,
        i: usize,
        available: &[bool],
        counters: &mut QueryCounters,
        scratch: &mut SearchScratch,
    ) -> CandidateSet {
        (**self).best_candidates(i, available, counters, scratch)
    }

    fn invalidate(&mut self, idx: usize) {
        (**self).invalidate(idx)
    }

    fn ranked_candidates(&self, i: usize, available: &[bool], k: usize) -> Vec<(usize, f64)> {
        (**self).ranked_candidates(i, available, k)
    }

    fn index_stats(&self) -> IndexStats {
        (**self).index_stats()
    }
}

/// Memoizing decorator over any [`CandidateSearch`]: the first
/// `ranked_candidates` query for a function computes and caches the
/// *full*, availability-unfiltered ranking; every later query answers
/// from the memo, filtered by the caller's availability mask and
/// truncated to `k`.
///
/// This is sound because availability only ever *removes* candidates
/// (the driver masks functions consumed by commits): filtering a
/// complete ranked list pointwise yields exactly what ranking the
/// filtered pool would. [`CandidateSearch::invalidate`] drops the
/// invalidated function's own memo (its index entry is gone) but leaves
/// the others — their stale references to `idx` are masked by
/// `available` just as the live index would mask them.
pub struct MemoizedSearch<S> {
    inner: S,
    full: RwLock<HashMap<usize, Vec<(usize, f64)>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<S: CandidateSearch> MemoizedSearch<S> {
    pub fn wrap(inner: S) -> MemoizedSearch<S> {
        MemoizedSearch {
            inner,
            full: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// `(hits, misses)` of the ranked-candidates memo so far.
    pub fn memo_counts(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

impl<S: CandidateSearch> CandidateSearch for MemoizedSearch<S> {
    fn num_functions(&self) -> usize {
        self.inner.num_functions()
    }

    fn best_candidates(
        &self,
        i: usize,
        available: &[bool],
        counters: &mut QueryCounters,
        scratch: &mut SearchScratch,
    ) -> CandidateSet {
        self.inner.best_candidates(i, available, counters, scratch)
    }

    fn invalidate(&mut self, idx: usize) {
        self.inner.invalidate(idx);
        self.full.write().unwrap().remove(&idx);
    }

    fn ranked_candidates(&self, i: usize, available: &[bool], k: usize) -> Vec<(usize, f64)> {
        let filtered = |full: &[(usize, f64)]| {
            full.iter().filter(|&&(j, _)| available[j]).take(k).copied().collect()
        };
        if let Some(full) = self.full.read().unwrap().get(&i) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return filtered(full);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let everyone = vec![true; self.inner.num_functions()];
        let full = self.inner.ranked_candidates(i, &everyone, usize::MAX);
        let result = filtered(&full);
        self.full.write().unwrap().insert(i, full);
        result
    }

    fn index_stats(&self) -> IndexStats {
        self.inner.index_stats()
    }
}

/// HyFM baseline: opcode-frequency fingerprints, exhaustive quadratic
/// nearest-neighbour ranking.
pub struct ExhaustiveOpcodeSearch {
    fps: Vec<OpcodeFingerprint>,
    names: Vec<String>,
}

impl ExhaustiveOpcodeSearch {
    /// Fingerprints every function (in parallel for `jobs > 1`).
    pub fn build(m: &Module, funcs: &[FuncId], jobs: usize) -> ExhaustiveOpcodeSearch {
        let fps = par_map_indexed(funcs.len(), jobs, |i| {
            OpcodeFingerprint::of(m.function(funcs[i]))
        });
        ExhaustiveOpcodeSearch { fps, names: capture_names(m, funcs) }
    }
}

impl CandidateSearch for ExhaustiveOpcodeSearch {
    fn num_functions(&self) -> usize {
        self.fps.len()
    }

    fn best_candidates(
        &self,
        i: usize,
        available: &[bool],
        counters: &mut QueryCounters,
        _scratch: &mut SearchScratch,
    ) -> CandidateSet {
        let mut set = CandidateSet::new(NEAR_TIE_EPS);
        for (j, av) in available.iter().enumerate() {
            if !*av || j == i {
                continue;
            }
            counters.comparisons += 1;
            counters.examined += 1;
            counters.returned += 1;
            set.push(j, self.fps[i].similarity(&self.fps[j]));
        }
        set
    }

    fn invalidate(&mut self, _idx: usize) {
        // The exhaustive scan consults `available` directly; there is no
        // retained structure to update.
    }

    fn ranked_candidates(&self, i: usize, available: &[bool], k: usize) -> Vec<(usize, f64)> {
        let mut ranked: Vec<(usize, f64)> = available
            .iter()
            .enumerate()
            .filter(|&(j, av)| *av && j != i)
            .map(|(j, _)| (j, self.fps[i].similarity(&self.fps[j])))
            .collect();
        sort_ranked(&mut ranked, &self.names);
        ranked.truncate(k);
        ranked
    }
}

/// F3M: signature fingerprints (MinHash by default, SimHash or TLSH-style
/// via `MergeParams::backend`) queried through a banded LSH index, with
/// the similarity threshold applied after the bucket lookup. Signatures
/// and band keys live in a [`PackedFingerprintStore`], so both the index
/// build and every probe walk contiguous memory.
pub struct LshBackendSearch {
    params: MergeParams,
    store: PackedFingerprintStore,
    names: Vec<String>,
    index: LshIndex<usize>,
    /// Scratch for the serial `ranked_candidates` path (`best_candidates`
    /// uses the caller's per-worker scratch instead; this lock is never
    /// contended in the pass).
    ranked_scratch: Mutex<QueryScratch<usize>>,
}

/// The historical name of [`LshBackendSearch`], kept for callers that
/// predate the backend seam.
pub type LshMinHashSearch = LshBackendSearch;

impl LshBackendSearch {
    /// Encodes, fingerprints and band-hashes every function (in parallel
    /// for `jobs > 1`; the backend is constructed once and shared), then
    /// packs the rows and populates the index sequentially in function
    /// order so bucket contents are identical for any job count.
    pub fn build(m: &Module, funcs: &[FuncId], params: MergeParams, jobs: usize) -> LshBackendSearch {
        let backend = backend_for(params.backend, params.k);
        let per_func = par_map_indexed(funcs.len(), jobs, |i| {
            let enc = encode_function(&m.types, m.function(funcs[i]));
            let sig = backend.signature(&enc);
            let keys = band_keys_for(params.lsh, &sig);
            (sig, keys)
        });
        let mut index = LshIndex::new(params.lsh);
        let mut store =
            PackedFingerprintStore::with_capacity(params.k, params.lsh.bands, per_func.len());
        for (i, (sig, keys)) in per_func.into_iter().enumerate() {
            index.insert_with_keys(i, &keys);
            store.push_with_keys(&sig, &keys);
        }
        LshBackendSearch {
            params,
            store,
            names: capture_names(m, funcs),
            index,
            ranked_scratch: Mutex::new(QueryScratch::new()),
        }
    }

    /// Estimated similarity of functions `i` and `j` under the backend.
    fn similarity(&self, i: usize, j: usize) -> f64 {
        signature_similarity(self.store.sig(i), self.store.sig(j))
    }

    /// The widened multi-probe key list for row `i`, or `None` under
    /// classic single-probe (`params.probes == 0`), where the stored
    /// band keys are probed directly without allocating.
    fn probe_widened(&self, i: usize) -> Option<Vec<BandKey>> {
        (self.params.probes > 0)
            .then(|| probe_keys_for(self.params.lsh, self.store.sig(i), self.params.probes))
    }
}

impl CandidateSearch for LshBackendSearch {
    fn num_functions(&self) -> usize {
        self.store.len()
    }

    fn best_candidates(
        &self,
        i: usize,
        available: &[bool],
        counters: &mut QueryCounters,
        scratch: &mut SearchScratch,
    ) -> CandidateSet {
        let qstats = match self.probe_widened(i) {
            Some(keys) => self.index.probe_keys_into(&keys, i, &mut scratch.query),
            None => self.index.probe_keys_into(self.store.keys(i), i, &mut scratch.query),
        };
        counters.examined += qstats.examined as u64;
        counters.evicted += qstats.evicted as u64;
        counters.collisions += qstats.collisions as u64;
        counters.returned += scratch.query.out.len() as u64;
        // One similarity computation per distinct candidate — the quantity
        // the paper's bucket cap bounds.
        counters.comparisons += scratch.query.out.len() as u64;
        // One dedup set + one candidate vector that were *not* allocated
        // because the scratch served this probe.
        counters.saved_allocs += 1;
        let mut set = CandidateSet::new(NEAR_TIE_EPS);
        for &j in &scratch.query.out {
            if !available[j] {
                continue;
            }
            let sim = self.similarity(i, j);
            if sim < self.params.threshold {
                continue;
            }
            set.push(j, sim);
        }
        set
    }

    fn invalidate(&mut self, idx: usize) {
        // The packed row stays (ids are positional); only the index entry
        // goes away.
        let keys: Vec<_> = self.store.keys(idx).to_vec();
        self.index.remove_with_keys(idx, &keys);
    }

    fn ranked_candidates(&self, i: usize, available: &[bool], k: usize) -> Vec<(usize, f64)> {
        let mut scratch = self.ranked_scratch.lock().unwrap();
        match self.probe_widened(i) {
            Some(keys) => self.index.probe_keys_into(&keys, i, &mut scratch),
            None => self.index.probe_keys_into(self.store.keys(i), i, &mut scratch),
        };
        let mut ranked: Vec<(usize, f64)> = scratch
            .out
            .iter()
            .filter(|&&j| available[j])
            .map(|&j| (j, self.similarity(i, j)))
            .filter(|&(_, sim)| sim >= self.params.threshold)
            .collect();
        sort_ranked(&mut ranked, &self.names);
        ranked.truncate(k);
        ranked
    }

    fn index_stats(&self) -> IndexStats {
        // HashMap iteration order is unstable; sort so the stats compare
        // equal across runs and job counts.
        let mut bucket_sizes = self.index.bucket_sizes();
        bucket_sizes.sort_unstable();
        IndexStats {
            buckets: self.index.num_buckets(),
            max_bucket: self.index.max_bucket_size(),
            bucket_sizes,
            bytes_per_fn: self.store.bytes_per_fn(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f3m_fingerprint::backend::BackendKind;

    fn searches() -> (LshBackendSearch, MemoizedSearch<LshBackendSearch>, usize) {
        let mut spec = f3m_workloads::mini_suite()[0].clone();
        spec.functions = 32;
        spec.seed = 7;
        let m = f3m_workloads::build_module(&spec);
        let funcs: Vec<FuncId> = m
            .defined_functions()
            .into_iter()
            .filter(|&f| m.function(f).num_linked_insts() > 0)
            .collect();
        let n = funcs.len();
        let params = MergeParams::static_default();
        let plain = LshBackendSearch::build(&m, &funcs, params, 1);
        let memo = MemoizedSearch::wrap(LshBackendSearch::build(&m, &funcs, params, 1));
        (plain, memo, n)
    }

    #[test]
    fn memoized_ranking_matches_plain_search() {
        let (plain, memo, n) = searches();
        let available = vec![true; n];
        for i in 0..n {
            assert_eq!(
                memo.ranked_candidates(i, &available, 5),
                plain.ranked_candidates(i, &available, 5),
                "function {i}"
            );
        }
        let (hits, misses) = memo.memo_counts();
        assert_eq!((hits, misses), (0, n as u64), "first pass is all misses");

        // Second pass answers from the memo, byte-for-byte identically.
        for i in 0..n {
            assert_eq!(
                memo.ranked_candidates(i, &available, 5),
                plain.ranked_candidates(i, &available, 5)
            );
        }
        assert_eq!(memo.memo_counts(), (n as u64, n as u64));
    }

    #[test]
    fn memoized_ranking_respects_availability_and_invalidate() {
        let (mut plain, mut memo, n) = searches();
        let all = vec![true; n];
        for i in 0..n {
            memo.ranked_candidates(i, &all, usize::MAX);
        }

        // Mask a function that actually shows up as a candidate.
        let victim = (0..n)
            .find(|&i| !plain.ranked_candidates(i, &all, 1).is_empty())
            .map(|i| plain.ranked_candidates(i, &all, 1)[0].0)
            .expect("workload families produce candidates");
        let mut masked = all.clone();
        masked[victim] = false;
        plain.invalidate(victim);
        memo.invalidate(victim);
        for i in 0..n {
            if i == victim {
                continue;
            }
            assert_eq!(
                memo.ranked_candidates(i, &masked, 5),
                plain.ranked_candidates(i, &masked, 5),
                "post-invalidate function {i}"
            );
        }
    }

    /// Every backend builds a working search over the same module, and
    /// each finds the planted family pairs among its top candidates.
    #[test]
    fn all_backends_rank_family_members_first() {
        let mut spec = f3m_workloads::mini_suite()[0].clone();
        spec.functions = 32;
        spec.seed = 11;
        let m = f3m_workloads::build_module(&spec);
        let funcs: Vec<FuncId> = m
            .defined_functions()
            .into_iter()
            .filter(|&f| m.function(f).num_linked_insts() > 0)
            .collect();
        let n = funcs.len();
        let available = vec![true; n];
        for kind in BackendKind::ALL {
            let params = MergeParams::static_default().with_backend(kind);
            let search = LshBackendSearch::build(&m, &funcs, params, 2);
            let found = (0..n)
                .filter(|&i| !search.ranked_candidates(i, &available, 3).is_empty())
                .count();
            assert!(
                found > n / 4,
                "{}: only {found}/{n} functions have candidates",
                kind.name()
            );
        }
    }

    /// The scratch-based query path is deterministic across job counts
    /// and matches a fresh-scratch query exactly.
    #[test]
    fn scratch_queries_are_job_count_independent() {
        let mut spec = f3m_workloads::mini_suite()[0].clone();
        spec.functions = 24;
        spec.seed = 13;
        let m = f3m_workloads::build_module(&spec);
        let funcs: Vec<FuncId> = m
            .defined_functions()
            .into_iter()
            .filter(|&f| m.function(f).num_linked_insts() > 0)
            .collect();
        let n = funcs.len();
        let params = MergeParams::static_default();
        let s1 = LshBackendSearch::build(&m, &funcs, params, 1);
        let s8 = LshBackendSearch::build(&m, &funcs, params, 8);
        let available = vec![true; n];
        let mut warm = SearchScratch::new();
        for i in 0..n {
            let mut c_warm = QueryCounters::default();
            let mut c_fresh = QueryCounters::default();
            let a = s1.best_candidates(i, &available, &mut c_warm, &mut warm);
            let b = s8.best_candidates(i, &available, &mut c_fresh, &mut SearchScratch::new());
            assert_eq!(
                a.choose(None, |idx| funcs[idx]),
                b.choose(None, |idx| funcs[idx]),
                "function {i}"
            );
            assert_eq!(c_warm.examined, c_fresh.examined);
            assert_eq!(c_warm.collisions, c_fresh.collisions);
            assert_eq!(c_warm.saved_allocs, 1, "one saved alloc per probe");
        }
    }
}
