//! Candidate search behind a strategy seam.
//!
//! The *preprocess* and *rank* stages of the pipeline differ per strategy
//! (HyFM scans opcode-frequency fingerprints exhaustively; F3M queries an
//! LSH index over MinHash fingerprints) but the driver does not care: it
//! asks a [`CandidateSearch`] for the best available candidates of one
//! function and tells it when a pair leaves the pool. Each implementation
//! owns its fingerprints, its query structure, and its post-commit
//! invalidation, and builds them in parallel across `jobs` threads with
//! deterministic (job-count-independent) results.

use f3m_fingerprint::adaptive::MergeParams;
use f3m_fingerprint::encode::encode_function;
use f3m_fingerprint::fnv::xor_constants;
use f3m_fingerprint::lsh::{band_keys_for, LshIndex};
use f3m_fingerprint::minhash::MinHashFingerprint;
use f3m_fingerprint::opcode_freq::OpcodeFingerprint;
use f3m_fingerprint::par::par_map_indexed;
use f3m_ir::ids::FuncId;
use f3m_ir::module::Module;

use crate::pass::Strategy;
use crate::profile::CandidateSet;

/// Near-tie tolerance for profile-guided selection (no effect without a
/// profile: the plain maximum is chosen).
const NEAR_TIE_EPS: f64 = 0.05;

/// Counters for one ranking query, accumulated into
/// [`MergeStats`](crate::report::MergeStats) by the driver.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryCounters {
    /// Fingerprint-to-fingerprint similarity computations.
    pub comparisons: u64,
    /// Search-structure entries examined (bucket entries for LSH, scan
    /// length for the exhaustive baseline).
    pub examined: u64,
    /// Distinct candidates the structure returned, before availability and
    /// threshold filtering.
    pub returned: u64,
    /// Bucket entries skipped by the LSH `bucket_cap` (always zero for the
    /// exhaustive baseline). Deterministic because buckets are sorted.
    pub evicted: u64,
}

/// A point-in-time description of a search structure, for observability
/// exports (metric registry, trace args). All values are deterministic for
/// a fixed workload and strategy.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IndexStats {
    /// Non-empty buckets in the structure (0 for the exhaustive baseline).
    pub buckets: usize,
    /// Population of the fullest bucket.
    pub max_bucket: usize,
    /// Sizes of all non-empty buckets, for occupancy histograms.
    pub bucket_sizes: Vec<usize>,
}

/// Strategy seam between the pass driver and a candidate-search structure.
///
/// Implementations are built once per pass over the function list (the
/// *preprocess* stage) and queried once per unmerged function (the *rank*
/// stage). After a commit the driver calls [`invalidate`] for both merged
/// functions so later queries no longer surface them.
///
/// [`invalidate`]: CandidateSearch::invalidate
pub trait CandidateSearch {
    /// Number of functions indexed.
    fn num_functions(&self) -> usize;

    /// Collects the best available merge candidates for function `i` as a
    /// near-tie [`CandidateSet`] (so a profile can bias the final choice).
    /// `available[j]` is false for functions already consumed by a merge;
    /// implementations must never return such candidates, nor `i` itself.
    fn best_candidates(
        &self,
        i: usize,
        available: &[bool],
        counters: &mut QueryCounters,
    ) -> CandidateSet;

    /// Removes function `idx` from the search structure after its pair was
    /// committed. (The driver additionally masks it in `available`; for
    /// structures with no retained state this may be a no-op.)
    fn invalidate(&mut self, idx: usize);

    /// The top-`k` available candidates for function `i`, as
    /// `(index, similarity)` pairs sorted by similarity descending with
    /// index ascending as the tie-break. Unlike [`Self::best_candidates`]
    /// this exposes the full ranking (not just the near-tie head), which
    /// is what corpus-level `query` requests serve; the tie-break rule is
    /// part of the wire contract, so both implementations share it.
    fn ranked_candidates(&self, i: usize, available: &[bool], k: usize) -> Vec<(usize, f64)>;

    /// Describes the current search structure for observability exports.
    /// The default (for structures with no retained index) is all-zero.
    fn index_stats(&self) -> IndexStats {
        IndexStats::default()
    }
}

/// The shared ordering rule behind [`CandidateSearch::ranked_candidates`]:
/// similarity descending, then function index ascending.
fn sort_ranked(ranked: &mut [(usize, f64)]) {
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
}

/// Builds the search structure for `strategy` over `funcs`, fanning the
/// per-function fingerprint work out across up to `jobs` threads.
///
/// The returned structure is `Send + Sync`: queries take `&self`, so the
/// wave loop can rank many functions concurrently against one snapshot of
/// the availability mask (mutation — `invalidate` — stays confined to the
/// serial commit walk).
pub fn build_search(
    m: &Module,
    funcs: &[FuncId],
    strategy: &Strategy,
    jobs: usize,
) -> Box<dyn CandidateSearch + Send + Sync> {
    match strategy {
        Strategy::Hyfm => Box::new(ExhaustiveOpcodeSearch::build(m, funcs, jobs)),
        Strategy::F3m(p) => Box::new(LshMinHashSearch::build(m, funcs, *p, jobs)),
        Strategy::F3mAdaptive => {
            let p = MergeParams::adaptive(funcs.len());
            Box::new(LshMinHashSearch::build(m, funcs, p, jobs))
        }
    }
}

/// HyFM baseline: opcode-frequency fingerprints, exhaustive quadratic
/// nearest-neighbour ranking.
pub struct ExhaustiveOpcodeSearch {
    fps: Vec<OpcodeFingerprint>,
}

impl ExhaustiveOpcodeSearch {
    /// Fingerprints every function (in parallel for `jobs > 1`).
    pub fn build(m: &Module, funcs: &[FuncId], jobs: usize) -> ExhaustiveOpcodeSearch {
        let fps = par_map_indexed(funcs.len(), jobs, |i| {
            OpcodeFingerprint::of(m.function(funcs[i]))
        });
        ExhaustiveOpcodeSearch { fps }
    }
}

impl CandidateSearch for ExhaustiveOpcodeSearch {
    fn num_functions(&self) -> usize {
        self.fps.len()
    }

    fn best_candidates(
        &self,
        i: usize,
        available: &[bool],
        counters: &mut QueryCounters,
    ) -> CandidateSet {
        let mut set = CandidateSet::new(NEAR_TIE_EPS);
        for (j, av) in available.iter().enumerate() {
            if !*av || j == i {
                continue;
            }
            counters.comparisons += 1;
            counters.examined += 1;
            counters.returned += 1;
            set.push(j, self.fps[i].similarity(&self.fps[j]));
        }
        set
    }

    fn invalidate(&mut self, _idx: usize) {
        // The exhaustive scan consults `available` directly; there is no
        // retained structure to update.
    }

    fn ranked_candidates(&self, i: usize, available: &[bool], k: usize) -> Vec<(usize, f64)> {
        let mut ranked: Vec<(usize, f64)> = available
            .iter()
            .enumerate()
            .filter(|&(j, av)| *av && j != i)
            .map(|(j, _)| (j, self.fps[i].similarity(&self.fps[j])))
            .collect();
        sort_ranked(&mut ranked);
        ranked.truncate(k);
        ranked
    }
}

/// F3M: MinHash fingerprints queried through a banded LSH index, with the
/// similarity threshold applied after the bucket lookup.
pub struct LshMinHashSearch {
    params: MergeParams,
    fps: Vec<MinHashFingerprint>,
    index: LshIndex<usize>,
}

impl LshMinHashSearch {
    /// Encodes, fingerprints and band-hashes every function (in parallel
    /// for `jobs > 1`; the xor constants are derived once and shared), then
    /// populates the index sequentially in function order so bucket
    /// contents are identical for any job count.
    pub fn build(m: &Module, funcs: &[FuncId], params: MergeParams, jobs: usize) -> LshMinHashSearch {
        let consts = xor_constants(params.k);
        let per_func = par_map_indexed(funcs.len(), jobs, |i| {
            let enc = encode_function(&m.types, m.function(funcs[i]));
            let fp = MinHashFingerprint::of_encoded_with(&consts, &enc);
            let keys = band_keys_for(params.lsh, &fp);
            (fp, keys)
        });
        let mut index = LshIndex::new(params.lsh);
        let mut fps = Vec::with_capacity(per_func.len());
        for (i, (fp, keys)) in per_func.into_iter().enumerate() {
            index.insert_with_keys(i, &keys);
            fps.push(fp);
        }
        LshMinHashSearch { params, fps, index }
    }
}

impl CandidateSearch for LshMinHashSearch {
    fn num_functions(&self) -> usize {
        self.fps.len()
    }

    fn best_candidates(
        &self,
        i: usize,
        available: &[bool],
        counters: &mut QueryCounters,
    ) -> CandidateSet {
        let (cands, qstats) = self.index.candidates_counted(&self.fps[i], i);
        counters.examined += qstats.examined as u64;
        counters.evicted += qstats.evicted as u64;
        counters.returned += cands.len() as u64;
        // One Jaccard computation per distinct candidate — the quantity
        // the paper's bucket cap bounds.
        counters.comparisons += cands.len() as u64;
        let mut set = CandidateSet::new(NEAR_TIE_EPS);
        for j in cands {
            if !available[j] {
                continue;
            }
            let sim = self.fps[i].similarity(&self.fps[j]);
            if sim < self.params.threshold {
                continue;
            }
            set.push(j, sim);
        }
        set
    }

    fn invalidate(&mut self, idx: usize) {
        self.index.remove(idx, &self.fps[idx]);
    }

    fn ranked_candidates(&self, i: usize, available: &[bool], k: usize) -> Vec<(usize, f64)> {
        let (cands, _) = self.index.candidates_counted(&self.fps[i], i);
        let mut ranked: Vec<(usize, f64)> = cands
            .into_iter()
            .filter(|&j| available[j])
            .map(|j| (j, self.fps[i].similarity(&self.fps[j])))
            .filter(|&(_, sim)| sim >= self.params.threshold)
            .collect();
        sort_ranked(&mut ranked);
        ranked.truncate(k);
        ranked
    }

    fn index_stats(&self) -> IndexStats {
        // HashMap iteration order is unstable; sort so the stats compare
        // equal across runs and job counts.
        let mut bucket_sizes = self.index.bucket_sizes();
        bucket_sizes.sort_unstable();
        IndexStats {
            buckets: self.index.num_buckets(),
            max_bucket: self.index.max_bucket_size(),
            bucket_sizes,
        }
    }
}
