//! Execution profiles for performance-aware merging.
//!
//! Section IV-F of the paper: merging "may merge a function with a
//! frequently used function, even if another similarly good and rarely
//! used candidate exists. A more performance-aware implementation of
//! function merging would use profiling information to influence candidate
//! selection towards infrequently used functions." This module implements
//! that proposed extension: a [`Profile`] carries per-function dynamic
//! execution weights, and the pass (when given one) breaks near-ties in
//! candidate similarity toward the coldest candidate.

use std::collections::HashMap;

use f3m_ir::ids::FuncId;

/// Per-function dynamic execution weights (e.g. interpreter step counts,
/// sample counts, or call frequencies).
#[derive(Clone, Debug, Default)]
pub struct Profile {
    weights: HashMap<FuncId, u64>,
}

impl Profile {
    /// Builds a profile from explicit `(function, weight)` pairs.
    pub fn from_counts(counts: impl IntoIterator<Item = (FuncId, u64)>) -> Profile {
        Profile { weights: counts.into_iter().collect() }
    }

    /// The weight of a function (0 when never observed — cold).
    pub fn weight(&self, f: FuncId) -> u64 {
        self.weights.get(&f).copied().unwrap_or(0)
    }

    /// Whether the profile has any observations.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Number of profiled functions.
    pub fn len(&self) -> usize {
        self.weights.len()
    }
}

/// Streaming candidate selector: keeps every candidate whose similarity is
/// within `eps` of the best seen so far, so a profile can break near-ties
/// toward cold functions without a second ranking pass.
#[derive(Clone, Debug)]
pub struct CandidateSet {
    eps: f64,
    best: f64,
    items: Vec<(usize, f64)>,
}

impl CandidateSet {
    /// Creates an empty set with the given near-tie tolerance.
    pub fn new(eps: f64) -> CandidateSet {
        CandidateSet { eps, best: f64::NEG_INFINITY, items: Vec::new() }
    }

    /// Offers one candidate.
    pub fn push(&mut self, idx: usize, sim: f64) {
        if sim > self.best {
            self.best = sim;
            self.items.retain(|&(_, s)| s >= self.best - self.eps);
        }
        if sim >= self.best - self.eps {
            self.items.push((idx, sim));
        }
    }

    /// The best similarity seen, if any candidate was offered.
    pub fn best_similarity(&self) -> Option<f64> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.best)
        }
    }

    /// Resolves the selection: without a profile, the highest-similarity
    /// candidate; with one, the *coldest* near-tied candidate (similarity
    /// breaking ties back).
    pub fn choose(
        &self,
        profile: Option<&Profile>,
        func_of: impl Fn(usize) -> FuncId,
    ) -> Option<(usize, f64)> {
        if self.items.is_empty() {
            return None;
        }
        match profile {
            None => self
                .items
                .iter()
                .copied()
                .max_by(|a, b| a.1.total_cmp(&b.1)),
            Some(p) => self
                .items
                .iter()
                .copied()
                .min_by(|&(ia, sa), &(ib, sb)| {
                    let wa = p.weight(func_of(ia));
                    let wb = p.weight(func_of(ib));
                    wa.cmp(&wb).then(sb.total_cmp(&sa))
                }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(i: usize) -> FuncId {
        FuncId::from_index(i)
    }

    #[test]
    fn without_profile_picks_max_similarity() {
        let mut cs = CandidateSet::new(0.05);
        cs.push(0, 0.7);
        cs.push(1, 0.9);
        cs.push(2, 0.88);
        assert_eq!(cs.choose(None, fid), Some((1, 0.9)));
    }

    #[test]
    fn profile_breaks_near_ties_toward_cold() {
        let mut cs = CandidateSet::new(0.05);
        cs.push(0, 0.90); // hot
        cs.push(1, 0.88); // cold, near-tied
        let p = Profile::from_counts([(fid(0), 100_000), (fid(1), 3)]);
        assert_eq!(cs.choose(Some(&p), fid).map(|(i, _)| i), Some(1));
    }

    #[test]
    fn profile_does_not_cross_the_tolerance() {
        let mut cs = CandidateSet::new(0.05);
        cs.push(0, 0.90); // hot but clearly better
        cs.push(1, 0.70); // cold but far worse
        let p = Profile::from_counts([(fid(0), 100_000), (fid(1), 0)]);
        assert_eq!(cs.choose(Some(&p), fid).map(|(i, _)| i), Some(0));
    }

    #[test]
    fn later_better_candidate_prunes_stale_near_ties() {
        let mut cs = CandidateSet::new(0.05);
        cs.push(0, 0.5);
        cs.push(1, 0.9); // 0.5 is no longer near-tied
        let p = Profile::from_counts([(fid(1), 100), (fid(0), 0)]);
        assert_eq!(cs.choose(Some(&p), fid).map(|(i, _)| i), Some(1));
    }

    #[test]
    fn empty_set_chooses_nothing() {
        let cs = CandidateSet::new(0.05);
        assert_eq!(cs.choose(None, fid), None);
    }

    #[test]
    fn unobserved_functions_are_cold() {
        let p = Profile::from_counts([(fid(0), 10)]);
        assert_eq!(p.weight(fid(1)), 0);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert!(Profile::default().is_empty());
    }
}
