//! Offline analyses used by the figure benches.
//!
//! These reproduce the *measurement* side of the paper's Figures 4, 6 and
//! 10: exhaustive pairwise comparisons of fingerprint similarity against
//! ground-truth alignment quality. They are deliberately outside the pass —
//! the pass never does exhaustive work; these exist to evaluate the
//! metrics themselves.

use f3m_fingerprint::encode::encode_function;
use f3m_fingerprint::minhash::MinHashFingerprint;
use f3m_fingerprint::opcode_freq::OpcodeFingerprint;
use f3m_ir::ids::FuncId;
use f3m_ir::module::Module;

use crate::align::needleman_wunsch;

/// One sampled function pair.
#[derive(Clone, Copy, Debug)]
pub struct PairSample {
    /// First function.
    pub f1: FuncId,
    /// Second function.
    pub f2: FuncId,
    /// Normalized opcode-frequency similarity (HyFM's metric, Fig. 4).
    pub sim_opcode: f64,
    /// Estimated Jaccard similarity of MinHash fingerprints (Fig. 10).
    pub sim_minhash: f64,
    /// Ground truth: Needleman–Wunsch alignment ratio.
    pub align_ratio: f64,
}

/// Computes similarity/alignment samples for all pairs of defined
/// functions (or every `stride`-th pair, to bound quadratic cost on large
/// modules; `stride = 1` means all pairs).
///
/// # Panics
///
/// Panics if `k` or `stride` is zero.
pub fn sample_pairs(m: &Module, k: usize, stride: usize) -> Vec<PairSample> {
    assert!(k > 0 && stride > 0);
    let funcs = m.defined_functions();
    let encoded: Vec<Vec<u32>> =
        funcs.iter().map(|&f| encode_function(&m.types, m.function(f))).collect();
    let opcode_fps: Vec<OpcodeFingerprint> =
        funcs.iter().map(|&f| OpcodeFingerprint::of(m.function(f))).collect();
    let minhash_fps: Vec<MinHashFingerprint> =
        encoded.iter().map(|e| MinHashFingerprint::of_encoded(e, k)).collect();

    let mut out = Vec::new();
    let mut counter = 0usize;
    for i in 0..funcs.len() {
        for j in (i + 1)..funcs.len() {
            counter += 1;
            if !counter.is_multiple_of(stride) {
                continue;
            }
            let align = needleman_wunsch(&encoded[i], &encoded[j]);
            out.push(PairSample {
                f1: funcs[i],
                f2: funcs[j],
                sim_opcode: opcode_fps[i].similarity(&opcode_fps[j]),
                sim_minhash: minhash_fps[i].similarity(&minhash_fps[j]),
                align_ratio: align.ratio(),
            });
        }
    }
    out
}

/// Pearson correlation coefficient of two equal-length samples.
/// Returns 0 when either side has zero variance or fewer than two points.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson on unequal-length samples");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (mx, my) = (mean(xs), mean(ys));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Discretizes `(x, y)` samples into a `bins × bins` heatmap over
/// `[0,1] × [0,1]` — the representation behind Figures 4 and 10.
pub fn heatmap(samples: &[(f64, f64)], bins: usize) -> Vec<Vec<u64>> {
    let mut grid = vec![vec![0u64; bins]; bins];
    for &(x, y) in samples {
        let bx = ((x * bins as f64) as usize).min(bins - 1);
        let by = ((y * bins as f64) as usize).min(bins - 1);
        grid[by][bx] += 1;
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_of_identical_series_is_one() {
        let xs = [0.1, 0.4, 0.5, 0.9];
        assert!((pearson(&xs, &xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_inverted_series_is_minus_one() {
        let xs = [0.1, 0.4, 0.5, 0.9];
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 - x).collect();
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_handles_degenerate_input() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[0.2, 0.9]), 0.0);
    }

    #[test]
    fn heatmap_bins_cover_unit_square() {
        let samples = [(0.0, 0.0), (0.999, 0.999), (1.0, 1.0), (0.5, 0.25)];
        let grid = heatmap(&samples, 4);
        assert_eq!(grid[0][0], 1);
        assert_eq!(grid[3][3], 2, "1.0 clamps into the last bin");
        assert_eq!(grid[1][2], 1);
        let total: u64 = grid.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn sample_pairs_produces_all_pairs_with_stride_one() {
        use f3m_ir::parser::parse_module;
        let m = parse_module(
            r#"
module "t" {
define @a(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  ret i32 %1
}
define @b(i32 %0) -> i32 {
bb0:
  %1 = add i32 %0, 1
  ret i32 %1
}
define @c(f64 %0) -> f64 {
bb0:
  %1 = fadd f64 %0, %0
  ret f64 %1
}
}
"#,
        )
        .unwrap();
        let samples = sample_pairs(&m, 64, 1);
        assert_eq!(samples.len(), 3);
        // a-b are identical: perfect everything.
        let ab = &samples[0];
        assert_eq!(ab.align_ratio, 1.0);
        assert_eq!(ab.sim_minhash, 1.0);
        assert_eq!(ab.sim_opcode, 1.0);
        // a-c are disjoint in types: alignment ratio 0.
        let ac = &samples[1];
        assert_eq!(ac.align_ratio, 0.0);
    }
}
