//! `f3m` — command-line driver for the function-merging reproduction.
//!
//! `--jobs <n>` parallelizes the whole pipeline: fingerprint construction
//! and the merge loop's speculative rank/align waves both fan out across
//! `n` threads, with a deterministic serial commit walk keeping the output
//! byte-identical for every job count.
//!
//! Observability: `--trace chrome:<path>` writes a Chrome `trace_event`
//! JSON (load it at `chrome://tracing` or in Perfetto) covering every
//! pipeline stage — fingerprint, rank, align, commit — and
//! `--metrics <path>` dumps the flat metrics registry as JSON. Both are
//! opt-in; the pass runs untraced when neither flag is given.
//!
//! ```text
//! f3m merge <input.ir> [-o <out.ir>] [--strategy hyfm|f3m|adaptive]
//!           [--threshold <t>] [--bands <b>] [--rows <r>] [-k <k>]
//!           [--bucket-cap <c>] [--jobs <n>] [--report json]
//!           [--repair phi|stack|legacy] [--dce]
//!           [--trace chrome:<path>] [--metrics <path>]
//! f3m merge --global <a.ir> <b.ir> ... [-o <out.ir>] [--jobs <n>] [-k <k>]
//!           [--min-profit <bytes>] [--shards <s>] [--report json]
//!           [--metrics <path>]
//! f3m stats <input.ir>
//! f3m run   <input.ir> <function> [int args...]
//! f3m run   [--workload <name>] [--scale <f>] [--strategy s] [--jobs <n>]
//!           [--trace chrome:<path>] [--metrics <path>]
//! f3m gen   <workload> [-o <out.ir>] [--scale <f>]
//! f3m fuzz  [--iterations <n>] [--seed <s>] [--corpus <dir>]
//!           [--protocol [--cases <n>]] [--global]
//!           [--trace chrome:<path>] [--metrics <path>]
//! f3m serve [--addr <host:port>] [--jobs <n>] [--queue-cap <c>]
//!           [--shards <s>] [--shed-depth <d>] [--max-inflight <n>]
//!           [--read-deadline-ms <t>] [--idle-timeout-ms <t>]
//!           [--trace chrome:<path>] [--metrics <path>]
//! f3m client [--addr <host:port>]
//!            <ingest|evict|query|update|merge|global-merge|stats|ping|shutdown> ...
//! f3m list
//! ```
//!
//! The daemon pair keeps a corpus resident across invocations: `f3m
//! serve` holds the sharded LSH index in memory and `f3m client` sends
//! one request per invocation and prints the JSON response on stdout.

use std::path::PathBuf;
use std::process::ExitCode;

use f3m::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("merge") => cmd_merge(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some("list") => cmd_list(),
        _ => {
            eprintln!(
                "usage: f3m <merge|stats|run|gen|list> ...\n\
                 \n\
                 merge <input.ir> [-o out.ir] [--strategy hyfm|f3m|adaptive]\n\
                 \x20      [--backend minhash|simhash|tlsh|embed] [--probes n]\n\
                 \x20      [--threshold t] [--bands b] [--rows r] [-k k] [--bucket-cap c]\n\
                 \x20      [--jobs n] [--report json] [--repair phi|stack|legacy] [--dce]\n\
                 \x20      [--trace chrome:path] [--metrics path]\n\
                 merge --global <a.ir> <b.ir> ... [-o out.ir] [--jobs n] [-k k]\n\
                 \x20      [--min-profit bytes] [--shards s] [--report json] [--metrics path]\n\
                 stats <input.ir>\n\
                 run   <input.ir> <function> [int args...]\n\
                 run   [--workload name] [--scale f] [--strategy s] [--jobs n]\n\
                 \x20      [--trace chrome:path] [--metrics path]\n\
                 gen   <workload> [-o out.ir] [--scale f]\n\
                 fuzz  [--iterations n] [--seed s] [--corpus dir]\n\
                 \x20      [--protocol [--cases n]] [--global]\n\
                 \x20      [--trace chrome:path] [--metrics path]\n\
                 serve [--addr host:port] [--jobs n] [--queue-cap c] [--shards s]\n\
                 \x20      [--backend minhash|simhash|tlsh|embed] [--snapshot path]\n\
                 \x20      [--probes n] [--resident-budget bytes]\n\
                 \x20      [--shed-depth d] [--max-inflight n] [--max-inflight-per-conn n]\n\
                 \x20      [--read-deadline-ms t] [--idle-timeout-ms t]\n\
                 \x20      [--trace chrome:path] [--metrics path]\n\
                 client [--addr host:port] ingest <file.ir> [--name n]\n\
                 client [--addr host:port] evict <module>\n\
                 client [--addr host:port] query <module> [--func f] [-k n] [--if-epoch e]\n\
                 client [--addr host:port] update <module> <func> [patch.ir]\n\
                 client [--addr host:port] merge [--strategy hyfm|f3m|f3m-adaptive] [--jobs n]\n\
                 client [--addr host:port] global-merge [--jobs n] [--if-epoch e]\n\
                 client [--addr host:port] stats|ping|shutdown\n\
                 snapshot [describe] <file>\n\
                 list"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn load(path: &str) -> Result<Module, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(f3m::ir::parser::parse_module(&text)?)
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Observability artifacts requested on the command line.
///
/// `--trace chrome:<path>` asks for a Chrome `trace_event` JSON dump and
/// `--metrics <path>` for the flat metrics-registry JSON. A tracer is only
/// constructed when `--trace` was given, so the instrumented pass pays
/// nothing by default.
struct Observability {
    trace_path: Option<PathBuf>,
    metrics_path: Option<PathBuf>,
}

impl Observability {
    fn parse(args: &[String]) -> Result<Observability, Box<dyn std::error::Error>> {
        let trace_path = match flag_value(args, "--trace") {
            None => None,
            Some(spec) => match spec.split_once(':') {
                Some(("chrome", path)) if !path.is_empty() => Some(PathBuf::from(path)),
                _ => {
                    return Err(format!(
                        "--trace expects `chrome:<path>` (only the chrome exporter \
                         exists), got `{spec}`"
                    )
                    .into())
                }
            },
        };
        let metrics_path = flag_value(args, "--metrics").map(PathBuf::from);
        Ok(Observability { trace_path, metrics_path })
    }

    fn tracer(&self) -> Option<Tracer> {
        self.trace_path.as_ref().map(|_| Tracer::new())
    }

    /// Write whichever artifacts were requested, creating parent
    /// directories as needed.
    fn write(&self, tracer: Option<&Tracer>, registry: &MetricsRegistry) -> CliResult {
        if let (Some(path), Some(t)) = (&self.trace_path, tracer) {
            f3m::trace::write_with_dirs(path, &t.to_chrome_json())?;
            eprintln!("trace: wrote {} events to {}", t.len(), path.display());
        }
        if let Some(path) = &self.metrics_path {
            f3m::trace::write_with_dirs(path, &registry.to_json())?;
            eprintln!("metrics: wrote {} metrics to {}", registry.len(), path.display());
        }
        Ok(())
    }
}

fn cmd_merge(args: &[String]) -> CliResult {
    if args.iter().any(|a| a == "--global") {
        return cmd_merge_global(args);
    }
    let input = args.first().ok_or("merge needs an input file")?;
    let mut m = load(input)?;
    let before = f3m::ir::size::module_size(&m);

    let mut config = match flag_value(args, "--strategy") {
        None | Some("f3m") => PassConfig::f3m(),
        Some("hyfm") => PassConfig::hyfm(),
        Some("adaptive") => PassConfig::f3m_adaptive(),
        Some(other) => return Err(format!("unknown strategy `{other}`").into()),
    };
    if let Some(t) = flag_value(args, "--threshold") {
        let t: f64 = t.parse()?;
        if let Strategy::F3m(params) = &mut config.strategy {
            params.threshold = t;
        } else {
            return Err("--threshold only applies to --strategy f3m".into());
        }
    }
    if let Some(name) = flag_value(args, "--backend") {
        let backend = BackendKind::parse(name)
            .ok_or_else(|| format!("unknown backend `{name}` (minhash, simhash, tlsh, embed)"))?;
        if let Strategy::F3m(params) = &mut config.strategy {
            params.backend = backend;
        } else {
            return Err("--backend only applies to --strategy f3m (adaptive derives \
                        its parameters per module; hyfm has no fingerprint index)"
                .into());
        }
    }
    if let Some(n) = flag_value(args, "--probes") {
        let probes: usize = n.parse()?;
        if let Strategy::F3m(params) = &mut config.strategy {
            params.probes = probes;
        } else {
            return Err("--probes only applies to --strategy f3m".into());
        }
    }
    let lsh_knobs = ["--bands", "--rows", "--bucket-cap", "-k"];
    if lsh_knobs.iter().any(|f| flag_value(args, f).is_some()) {
        let Strategy::F3m(params) = &mut config.strategy else {
            return Err("--bands/--rows/--bucket-cap/-k only apply to --strategy f3m".into());
        };
        let rows: usize =
            flag_value(args, "--rows").map(str::parse).transpose()?.unwrap_or(params.lsh.rows);
        let bands: usize =
            flag_value(args, "--bands").map(str::parse).transpose()?.unwrap_or(params.lsh.bands);
        if rows == 0 || bands == 0 {
            return Err("--rows and --bands must be positive".into());
        }
        let k: usize = match flag_value(args, "-k") {
            Some(k) => k.parse()?,
            None => rows * bands,
        };
        if k != rows * bands {
            return Err(format!(
                "-k {k} must equal --rows × --bands ({rows} × {bands} = {})",
                rows * bands
            )
            .into());
        }
        let bucket_cap: usize = flag_value(args, "--bucket-cap")
            .map(str::parse)
            .transpose()?
            .unwrap_or(params.lsh.bucket_cap);
        params.k = k;
        params.lsh = f3m::fingerprint::lsh::LshParams { rows, bands, bucket_cap };
    }
    if let Some(jobs) = flag_value(args, "--jobs") {
        config.jobs = jobs.parse()?;
    }
    let json_report = match flag_value(args, "--report") {
        None => false,
        Some("json") => {
            if flag_value(args, "-o").is_none() {
                return Err("--report json requires -o (the JSON report goes to stdout)".into());
            }
            true
        }
        Some(other) => return Err(format!("unknown report format `{other}`").into()),
    };
    config.merge = MergeConfig {
        repair: match flag_value(args, "--repair") {
            None | Some("phi") => RepairMode::Phi,
            Some("stack") => RepairMode::Stack,
            Some("legacy") => RepairMode::LegacyBuggy,
            Some(other) => return Err(format!("unknown repair mode `{other}`").into()),
        },
    };

    let obs = Observability::parse(args)?;
    let tracer = obs.tracer();
    let t0 = std::time::Instant::now();
    let report = run_pass_traced(&mut m, &config, tracer.as_ref());
    let elapsed = t0.elapsed();
    if args.iter().any(|a| a == "--dce") {
        let (insts, blocks) = f3m::core::dce::dce_module(&mut m);
        eprintln!("dce: removed {insts} instructions, {blocks} unreachable blocks");
    }
    f3m::ir::verify::verify_module(&m)
        .map_err(|e| format!("verification failed: {}", e[0]))?;

    let after = f3m::ir::size::module_size(&m);
    eprintln!(
        "merged {} of {} attempted pairs in {:.1} ms ({} waves); \
         size {} -> {} bytes ({:.2}% reduction)",
        report.stats.merges_committed,
        report.stats.pairs_attempted,
        elapsed.as_secs_f64() * 1e3,
        report.stats.waves,
        before,
        after,
        report.stats.size_reduction() * 100.0
    );
    if json_report {
        println!("{}", report.to_json());
    }
    let mut registry = MetricsRegistry::new();
    report.export_metrics(&mut registry, "pass");
    obs.write(tracer.as_ref(), &registry)?;
    let text = f3m::ir::printer::print_module(&m);
    match flag_value(args, "-o") {
        Some(path) => std::fs::write(path, text)?,
        None => print!("{text}"),
    }
    Ok(())
}

/// `merge --global`: ingest every input module into a fresh resident
/// corpus and run the two-phase cross-module planner — optimistic merges
/// from the corpus-global index, then global verification with rollback.
fn cmd_merge_global(args: &[String]) -> CliResult {
    let value_flags = ["-o", "--jobs", "-k", "--min-profit", "--shards", "--report", "--metrics"];
    let mut inputs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--global" {
            i += 1;
        } else if value_flags.contains(&a) {
            i += 2;
        } else if a.starts_with('-') {
            return Err(format!("unknown flag `{a}` for merge --global").into());
        } else {
            inputs.push(a);
            i += 1;
        }
    }
    if inputs.is_empty() {
        return Err("merge --global needs at least one input file".into());
    }
    let jobs: usize = flag_value(args, "--jobs").map(str::parse).transpose()?.unwrap_or(1);
    let shards: usize = flag_value(args, "--shards").map(str::parse).transpose()?.unwrap_or(4);
    if jobs == 0 || shards == 0 {
        return Err("--jobs and --shards must be positive".into());
    }
    let json_report = match flag_value(args, "--report") {
        None => false,
        Some("json") => {
            if flag_value(args, "-o").is_none() {
                return Err("--report json requires -o (the JSON report goes to stdout)".into());
            }
            true
        }
        Some(other) => return Err(format!("unknown report format `{other}`").into()),
    };

    let corpus = f3m::core::Corpus::new(f3m::core::CorpusConfig {
        shards,
        jobs,
        ..Default::default()
    });
    for path in &inputs {
        let m = load(path)?;
        corpus.ingest(m).map_err(|e| format!("{path}: {e}"))?;
    }

    let mut cfg = f3m::core::GlobalPlanConfig::default().with_jobs(jobs);
    if let Some(k) = flag_value(args, "-k") {
        cfg.k = k.parse()?;
    }
    if let Some(p) = flag_value(args, "--min-profit") {
        cfg.min_profit = p.parse()?;
    }
    let t0 = std::time::Instant::now();
    let (report, merged, _epoch) = f3m::core::GlobalMergePlanner::new(&corpus, cfg).run()?;
    let elapsed = t0.elapsed();
    f3m::ir::verify::verify_module(&merged)
        .map_err(|e| format!("verification failed: {}", e[0]))?;

    let s = &report.stats;
    eprintln!(
        "global merge over {} modules ({} functions): {} optimistic, {} verified, \
         {} rolled back in {} round(s), {:.1} ms; {} of {} pairs cross-module; \
         size {} -> {} bytes ({:.2}% reduction)",
        s.modules,
        s.functions,
        s.optimistic_merges,
        s.verified_merges,
        s.rolled_back,
        s.rounds,
        elapsed.as_secs_f64() * 1e3,
        s.cross_module_pairs,
        s.pairs_considered,
        s.size_before,
        s.size_after,
        s.size_reduction() * 100.0
    );
    if json_report {
        println!("{}", report.to_json());
    }
    if let Some(path) = flag_value(args, "--metrics") {
        let mut registry = MetricsRegistry::new();
        report.export_metrics(&mut registry, "global");
        f3m::trace::write_with_dirs(std::path::Path::new(path), &registry.to_json())?;
        eprintln!("metrics: wrote {} metrics to {path}", registry.len());
    }
    let text = f3m::ir::printer::print_module(&merged);
    match flag_value(args, "-o") {
        Some(path) => std::fs::write(path, text)?,
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let input = args.first().ok_or("stats needs an input file")?;
    let m = load(input)?;
    let defs = m.defined_functions();
    println!("module \"{}\"", m.name);
    println!("  functions:     {} defined, {} total", defs.len(), m.num_functions());
    println!("  instructions:  {}", m.total_insts());
    println!("  globals:       {}", m.num_globals());
    println!("  est. size:     {} bytes", f3m::ir::size::module_size(&m));
    let mut sizes: Vec<(usize, String)> = defs
        .iter()
        .map(|&f| (m.function(f).num_linked_insts(), m.function(f).name.clone()))
        .collect();
    sizes.sort_by_key(|s| std::cmp::Reverse(s.0));
    println!("  largest functions:");
    for (n, name) in sizes.iter().take(5) {
        println!("    {n:>6}  @{name}");
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> CliResult {
    // Two modes share the verb: `run <input.ir> <function> [args...]`
    // interprets a function, while `run` with no positional arguments runs
    // the merge pipeline on a built-in workload — the quickest way to get
    // a Chrome-loadable trace (`f3m run --trace chrome:out.json`).
    match args.first().map(String::as_str) {
        Some(a) if !a.starts_with("--") => cmd_run_interp(args),
        _ => cmd_run_demo(args),
    }
}

fn cmd_run_demo(args: &[String]) -> CliResult {
    let name = flag_value(args, "--workload").unwrap_or("429.mcf");
    let spec = table1()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| format!("unknown workload `{name}` (try `f3m list`)"))?;
    let scale: f64 = flag_value(args, "--scale").map(str::parse).transpose()?.unwrap_or(0.5);
    let mut m = build_module(&spec.scaled(scale));

    let mut config = match flag_value(args, "--strategy") {
        None | Some("f3m") => PassConfig::f3m(),
        Some("hyfm") => PassConfig::hyfm(),
        Some("adaptive") => PassConfig::f3m_adaptive(),
        Some(other) => return Err(format!("unknown strategy `{other}`").into()),
    };
    if let Some(jobs) = flag_value(args, "--jobs") {
        config.jobs = jobs.parse()?;
    }

    let obs = Observability::parse(args)?;
    let tracer = obs.tracer();
    let t0 = std::time::Instant::now();
    let report = run_pass_traced(&mut m, &config, tracer.as_ref());
    let elapsed = t0.elapsed();
    f3m::ir::verify::verify_module(&m)
        .map_err(|e| format!("verification failed: {}", e[0]))?;

    eprintln!(
        "{name} x{scale}: merged {} of {} attempted pairs in {:.1} ms \
         ({} waves); size {} -> {} ({:.2}% reduction)",
        report.stats.merges_committed,
        report.stats.pairs_attempted,
        elapsed.as_secs_f64() * 1e3,
        report.stats.waves,
        report.stats.size_before,
        report.stats.size_after,
        report.stats.size_reduction() * 100.0
    );
    let mut registry = MetricsRegistry::new();
    report.export_metrics(&mut registry, "pass");
    obs.write(tracer.as_ref(), &registry)?;
    Ok(())
}

fn cmd_run_interp(args: &[String]) -> CliResult {
    let input = args.first().ok_or("run needs an input file")?;
    let func = args.get(1).ok_or("run needs a function name")?;
    let m = load(input)?;
    let vals: Vec<Val> = args[2..]
        .iter()
        .map(|a| a.parse::<i64>().map(Val::Int))
        .collect::<Result<_, _>>()?;
    let mut interp = Interpreter::new(&m);
    let out = interp.call_by_name(func, &vals)?;
    println!(
        "@{func}({vals:?}) -> {:?}   [{} steps, checksum {:#x}]",
        out.ret, out.steps, out.checksum
    );
    Ok(())
}

fn cmd_gen(args: &[String]) -> CliResult {
    let name = args.first().ok_or("gen needs a workload name (try `f3m list`)")?;
    let spec = table1()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| format!("unknown workload `{name}` (try `f3m list`)"))?;
    let scale: f64 = flag_value(args, "--scale").map(str::parse).transpose()?.unwrap_or(1.0);
    let m = build_module(&spec.scaled(scale));
    eprintln!(
        "generated {} with {} functions, {} instructions",
        spec.name,
        m.defined_functions().len(),
        m.total_insts()
    );
    let text = f3m::ir::printer::print_module(&m);
    match flag_value(args, "-o") {
        Some(path) => std::fs::write(path, text)?,
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_fuzz(args: &[String]) -> CliResult {
    let iterations: usize =
        flag_value(args, "--iterations").map(str::parse).transpose()?.unwrap_or(500);
    let seed: u64 = match flag_value(args, "--seed") {
        Some(s) => match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16)?,
            None => s.parse()?,
        },
        None => 0xF3F3,
    };
    let corpus_dir = flag_value(args, "--corpus").map(std::path::PathBuf::from);
    if args.iter().any(|a| a == "--global") {
        // Global mode fuzzes the two-phase cross-module planner: several
        // mutated modules per iteration, jobs byte-identity, and a
        // cross-module driver differential.
        let mut cfg = f3m::fuzz::GlobalCampaignConfig { seed, corpus_dir, ..Default::default() };
        // The shared 500-iteration default is sized for the single-module
        // campaign; only override the global default when asked.
        if flag_value(args, "--iterations").is_some() {
            cfg.iterations = iterations;
        }
        let obs = Observability::parse(args)?;
        let summary = f3m::fuzz::run_global_campaign(&cfg);
        println!("{}", summary.to_json());
        let mut registry = MetricsRegistry::new();
        summary.export_metrics(&mut registry, "fuzz.global");
        obs.write(None, &registry)?;
        return if summary.failures.is_empty() {
            Ok(())
        } else {
            Err(format!("{} global oracle failure(s) found", summary.failures.len()).into())
        };
    }
    if args.iter().any(|a| a == "--protocol") {
        // Protocol mode fuzzes a live in-process daemon over TCP instead
        // of the merge pipeline; --iterations/--cases count scenarios.
        let cases = flag_value(args, "--cases")
            .map(str::parse)
            .transpose()?
            .unwrap_or(iterations);
        let cfg = f3m::fuzz::protocol::ProtocolCampaignConfig {
            cases,
            seed,
            corpus_dir,
            ..Default::default()
        };
        let summary = f3m::fuzz::protocol::run_protocol_campaign(&cfg);
        println!("{}", summary.to_json());
        return if summary.failures.is_empty() {
            Ok(())
        } else {
            Err(format!("{} protocol oracle failure(s) found", summary.failures.len()).into())
        };
    }
    let cfg = f3m::fuzz::CampaignConfig {
        iterations,
        seed,
        corpus_dir,
        ..Default::default()
    };
    let obs = Observability::parse(args)?;
    let tracer = obs.tracer();
    let summary = f3m::fuzz::run_campaign_traced(&cfg, tracer.as_ref());
    println!("{}", summary.to_json());
    let mut registry = MetricsRegistry::new();
    summary.export_metrics(&mut registry, "fuzz");
    obs.write(tracer.as_ref(), &registry)?;
    if summary.failures.is_empty() {
        Ok(())
    } else {
        Err(format!("{} oracle failure(s) found", summary.failures.len()).into())
    }
}

/// Default daemon address for `serve`/`client` when `--addr` is absent.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7333";

fn cmd_serve(args: &[String]) -> CliResult {
    let obs = Observability::parse(args)?;
    let backend = match flag_value(args, "--backend") {
        None => BackendKind::MinHash,
        Some(name) => BackendKind::parse(name)
            .ok_or_else(|| format!("unknown backend `{name}` (minhash, simhash, tlsh, embed)"))?,
    };
    let mut admission = f3m::serve::AdmissionConfig::default();
    if let Some(v) = flag_value(args, "--shed-depth") {
        admission.queue_shed_depth = v.parse()?;
    }
    if let Some(v) = flag_value(args, "--max-inflight") {
        admission.max_inflight_global = v.parse()?;
    }
    if let Some(v) = flag_value(args, "--max-inflight-per-conn") {
        admission.max_inflight_per_conn = v.parse()?;
    }
    let mut cfg = f3m::serve::ServeConfig {
        addr: flag_value(args, "--addr").unwrap_or(DEFAULT_SERVE_ADDR).to_string(),
        jobs: flag_value(args, "--jobs").map(str::parse).transpose()?.unwrap_or(2),
        queue_cap: flag_value(args, "--queue-cap").map(str::parse).transpose()?.unwrap_or(64),
        shards: flag_value(args, "--shards").map(str::parse).transpose()?.unwrap_or(8),
        backend,
        probes: flag_value(args, "--probes").map(str::parse).transpose()?.unwrap_or(0),
        resident_budget: flag_value(args, "--resident-budget").map(str::parse).transpose()?,
        admission,
        snapshot_path: flag_value(args, "--snapshot").map(PathBuf::from),
        metrics_path: obs.metrics_path,
        trace_path: obs.trace_path,
        ..Default::default()
    };
    if let Some(v) = flag_value(args, "--read-deadline-ms") {
        cfg.read_deadline_ms = v.parse()?;
    }
    if let Some(v) = flag_value(args, "--idle-timeout-ms") {
        cfg.idle_timeout_ms = v.parse()?;
    }
    if cfg.jobs == 0 || cfg.queue_cap == 0 || cfg.shards == 0 {
        return Err("--jobs, --queue-cap and --shards must be positive".into());
    }
    f3m::serve::serve(cfg)?;
    eprintln!("f3m-serve: shut down cleanly");
    Ok(())
}

fn cmd_client(args: &[String]) -> CliResult {
    use f3m::serve::Request;
    let addr = flag_value(args, "--addr").unwrap_or(DEFAULT_SERVE_ADDR);
    // First non-flag argument is the verb; flags may precede it.
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with("--") || a == "-k" {
            i += 2; // every client flag takes a value
        } else {
            positional.push(a.as_str());
            i += 1;
        }
    }
    let verb = *positional.first().ok_or("client needs a request type (try `f3m` for usage)")?;
    let body = match verb {
        "ingest" => {
            let path = positional.get(1).ok_or("ingest needs an IR file")?;
            Request::Ingest {
                name: flag_value(args, "--name").map(str::to_string),
                ir: std::fs::read_to_string(path)?,
            }
        }
        "evict" => Request::Evict {
            name: positional.get(1).ok_or("evict needs a module name")?.to_string(),
        },
        "query" => Request::Query {
            module: positional.get(1).ok_or("query needs a module name")?.to_string(),
            func: flag_value(args, "--func").map(str::to_string),
            k: flag_value(args, "-k")
                .map(str::parse)
                .transpose()?
                .unwrap_or(f3m::serve::protocol::DEFAULT_QUERY_K),
            if_epoch: flag_value(args, "--if-epoch").map(str::parse).transpose()?,
        },
        "update" => Request::Update {
            module: positional.get(1).ok_or("update needs a module name")?.to_string(),
            func: positional.get(2).ok_or("update needs a function name")?.to_string(),
            // No file = touch: re-fingerprint the function in place.
            ir: positional.get(3).map(std::fs::read_to_string).transpose()?,
        },
        "merge" => Request::Merge {
            strategy: flag_value(args, "--strategy").unwrap_or("f3m").to_string(),
            jobs: flag_value(args, "--jobs").map(str::parse).transpose()?,
        },
        "global-merge" => Request::GlobalMerge {
            jobs: flag_value(args, "--jobs").map(str::parse).transpose()?,
            if_epoch: flag_value(args, "--if-epoch").map(str::parse).transpose()?,
        },
        "stats" => Request::Stats,
        "ping" => Request::Ping,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown client request `{other}`").into()),
    };
    let mut client = f3m::serve::Client::connect(addr)?;
    let env = f3m::serve::RequestEnvelope::of(body);
    let raw = client.request_raw(&env)?;
    println!("{raw}");
    // Mirror the response status in the exit code so scripts can branch
    // on failures without parsing JSON.
    let v = f3m::serve::protocol::parse_response(raw.as_bytes())?;
    match v.get("type").and_then(f3m::trace::Json::as_str) {
        Some("error") | Some("busy") | Some("overloaded") => Err(format!(
            "daemon refused `{verb}`: {}",
            v.get("message").and_then(f3m::trace::Json::as_str).unwrap_or("queue full")
        )
        .into()),
        _ => Ok(()),
    }
}

/// `f3m snapshot [describe] <file>` — open and fully validate an index
/// snapshot (checksum, structure, corpus payload) and print its vitals:
/// header parameters, per-pool byte layout, bucket-directory occupancy,
/// and what the mmap-resident loader would do with it. Exit code
/// reflects validity, so CI can gate on a restored artefact.
fn cmd_snapshot(args: &[String]) -> CliResult {
    // `describe` is an optional verb; with or without it the snapshot is
    // fully validated (including the pool checksum).
    let rest = match args.first().map(String::as_str) {
        Some("describe") => &args[1..],
        _ => args,
    };
    let path = rest.first().ok_or("snapshot needs a file to verify")?;
    let p = std::path::Path::new(path);
    let snap =
        f3m::fingerprint::snapshot::open_snapshot(p).map_err(|e| format!("{path}: {e}"))?;
    let meta = f3m::fingerprint::snapshot::open_snapshot_meta(p)
        .map_err(|e| format!("{path}: {e}"))?;
    let h = &snap.header;
    let modules = f3m::core::Corpus::snapshot_sources(p)
        .map_err(|e| format!("{path}: corpus payload: {e}"))?;
    let l = &meta.layout;
    let bucket_members: usize = snap.buckets.iter().map(|(_, m)| m.len()).sum();
    let max_bucket = snap.buckets.iter().map(|(_, m)| m.len()).max().unwrap_or(0);
    let bytes_per_fn = snap.store.bytes_per_fn();
    let rows_per_shard =
        (f3m::fingerprint::resident::TARGET_SHARD_BYTES / bytes_per_fn.max(1)).max(1);
    let resident_shards = h.entries.div_ceil(rows_per_shard);
    println!(
        "{path}: valid snapshot\n\
         \x20 backend:    {}\n\
         \x20 signature:  k = {} ({} bands x {} rows, bucket cap {})\n\
         \x20 threshold:  {}\n\
         \x20 epoch:      {}\n\
         \x20 entries:    {} functions ({} bytes/fn packed)\n\
         \x20 buckets:    {} ({} members, max bucket {})\n\
         \x20 modules:    {}\n\
         \x20 shards:     {} (at save; loaders re-route freely)\n\
         \x20 layout:     file {} B = meta {} B (directory {} B, payload {} B) \
         + pools {} B\n\
         \x20 pools:      signatures {} B + band keys {} B at offset {} \
         (8-byte aligned: {})\n\
         \x20 residency:  {} shard(s) of <= {} rows each; \
         serve with --resident-budget to cap hot bytes",
        h.backend.name(),
        h.k,
        h.lsh.bands,
        h.lsh.rows,
        h.lsh.bucket_cap,
        h.threshold,
        h.epoch,
        h.entries,
        bytes_per_fn,
        snap.buckets.len(),
        bucket_members,
        max_bucket,
        modules.len(),
        h.shards,
        l.file_len,
        l.meta_end,
        l.dir_len,
        l.payload_len,
        l.file_len - l.meta_end,
        l.sig_pool_bytes,
        l.key_pool_bytes,
        l.pool_start,
        l.pool_start % 8 == 0,
        resident_shards,
        rows_per_shard,
    );
    Ok(())
}

fn cmd_list() -> CliResult {
    println!("{:<18} {:>10} {:>8}", "workload", "functions", "class");
    for s in table1() {
        println!("{:<18} {:>10} {:>8?}", s.name, s.functions, s.class);
    }
    Ok(())
}
