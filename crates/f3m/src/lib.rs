//! # f3m — Fast Focused Function Merging (CGO 2022), reproduced in Rust
//!
//! Facade crate re-exporting the complete reproduction:
//!
//! - [`ir`]: the SSA IR substrate (types, functions, parser/printer,
//!   CFG/dominators, verifier, size model),
//! - [`interp`]: an IR interpreter with dynamic instruction counting,
//! - [`fingerprint`]: opcode-frequency (HyFM) and MinHash fingerprints,
//!   LSH search, and the adaptive parameter equations,
//! - [`core`]: alignment, merged-function code generation and the merging
//!   pass itself,
//! - [`workloads`]: the synthetic Table I benchmark-suite generator,
//! - [`fuzz`]: differential fuzzing of the whole pipeline — IR mutators,
//!   a merge oracle, deterministic campaigns and a delta-debugging
//!   reducer (`f3m fuzz` on the command line),
//! - [`serve`]: the resident merge daemon — a persistent sharded LSH
//!   corpus with epoch-versioned ingestion behind a length-prefixed JSON
//!   TCP protocol (`f3m serve` / `f3m client` on the command line),
//! - [`trace`]: pipeline observability — structured span tracing with a
//!   Chrome `trace_event` exporter, a typed metrics registry, and the
//!   baseline machinery behind the perf-regression gate
//!   (`--trace chrome:<path>` / `--metrics <path>` on the command line).
//!
//! # Quickstart
//!
//! ```
//! use f3m::prelude::*;
//!
//! // Build a synthetic workload and merge it with F3M.
//! let spec = f3m::workloads::table1()[0].scaled(0.5);
//! let mut module = f3m::workloads::build_module(&spec);
//! let report = run_pass(&mut module, &PassConfig::f3m());
//! assert!(report.stats.size_after <= report.stats.size_before);
//! f3m::ir::verify::verify_module(&module).unwrap();
//! ```

pub use f3m_core as core;
pub use f3m_fingerprint as fingerprint;
pub use f3m_fuzz as fuzz;
pub use f3m_interp as interp;
pub use f3m_ir as ir;
pub use f3m_serve as serve;
pub use f3m_trace as trace;
pub use f3m_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use f3m_core::pass::{
        run_pass, run_pass_traced, MergeReport, MergeStats, PassConfig, Strategy,
    };
    pub use f3m_core::{MergeConfig, RepairMode};
    pub use f3m_fingerprint::adaptive::MergeParams;
    pub use f3m_fingerprint::{
        BackendKind, LshIndex, LshParams, MinHashFingerprint, OpcodeFingerprint,
    };
    pub use f3m_interp::{Interpreter, Limits, Outcome, Trap, Val};
    pub use f3m_ir::prelude::*;
    pub use f3m_trace::{MetricsRegistry, Tracer};
    pub use f3m_workloads::{build_module, table1, MutationProfile, ShapeParams, WorkloadSpec};
}
