//! End-to-end tests of the `f3m` command-line tool, driving the real
//! binary through its full workflow: generate → stats → merge → run.

use std::process::Command;

fn f3m() -> Command {
    Command::new(env!("CARGO_BIN_EXE_f3m"))
}

fn run_ok(cmd: &mut Command) -> (String, String) {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed: {:?}\nstdout: {}\nstderr: {}",
        cmd,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_shows_the_suite() {
    let (stdout, _) = run_ok(f3m().arg("list"));
    assert!(stdout.contains("chrome-scale"));
    assert!(stdout.contains("400.perlbench"));
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = f3m().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn full_workflow_gen_stats_merge_run() {
    let dir = std::env::temp_dir().join(format!("f3m-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.ir");
    let merged = dir.join("out.ir");

    // gen
    let (_, stderr) = run_ok(f3m()
        .args(["gen", "429.mcf", "--scale", "0.5", "-o"])
        .arg(&input));
    assert!(stderr.contains("generated 429.mcf"), "{stderr}");

    // stats
    let (stdout, _) = run_ok(f3m().arg("stats").arg(&input));
    assert!(stdout.contains("functions:"), "{stdout}");
    assert!(stdout.contains("est. size:"), "{stdout}");

    // run the original driver
    let (orig_out, _) = run_ok(f3m().arg("run").arg(&input).args(["__driver", "42"]));

    // merge with DCE
    let (_, stderr) = run_ok(f3m()
        .arg("merge")
        .arg(&input)
        .arg("-o")
        .arg(&merged)
        .args(["--strategy", "adaptive", "--dce"]));
    assert!(stderr.contains("reduction"), "{stderr}");

    // run the merged driver: same return value
    let (merged_out, _) = run_ok(f3m().arg("run").arg(&merged).args(["__driver", "42"]));
    let ret = |s: &str| s.split("->").nth(1).unwrap().split('[').next().unwrap().trim().to_string();
    assert_eq!(ret(&orig_out), ret(&merged_out), "{orig_out} vs {merged_out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_rejects_unknown_strategy() {
    let dir = std::env::temp_dir().join(format!("f3m-cli-test2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.ir");
    run_ok(f3m().args(["gen", "429.mcf", "--scale", "0.3", "-o"]).arg(&input));
    let out = f3m()
        .arg("merge")
        .arg(&input)
        .args(["--strategy", "nonsense"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown strategy"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_lsh_knobs_and_json_report() {
    let dir = std::env::temp_dir().join(format!("f3m-cli-test4-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.ir");
    let merged = dir.join("out.ir");
    run_ok(f3m().args(["gen", "429.mcf", "--scale", "0.3", "-o"]).arg(&input));

    // Explicit banding knobs with a consistent k, parallel preprocess, and
    // a JSON report on stdout.
    let (stdout, _) = run_ok(f3m()
        .arg("merge")
        .arg(&input)
        .arg("-o")
        .arg(&merged)
        .args([
            "--bands", "50", "--rows", "2", "-k", "100", "--bucket-cap", "64", "--jobs",
            "4", "--report", "json",
        ]));
    for key in [
        "\"stats\"",
        "\"preprocess_ns\"",
        "\"candidates_examined\"",
        "\"candidates_returned\"",
        "\"attempts\"",
    ] {
        assert!(stdout.contains(key), "missing {key} in JSON report: {stdout}");
    }
    assert!(merged.exists(), "merged module written to -o");

    // Inconsistent k is rejected with the constraint spelled out.
    let out = f3m()
        .arg("merge")
        .arg(&input)
        .args(["--bands", "50", "--rows", "2", "-k", "99"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("must equal --rows × --bands"));

    // Banding knobs make no sense for the opcode-histogram baseline.
    let out = f3m()
        .arg("merge")
        .arg(&input)
        .args(["--strategy", "hyfm", "--bands", "50"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("only apply to --strategy f3m"));

    // JSON on stdout would collide with the module text.
    let out = f3m().arg("merge").arg(&input).args(["--report", "json"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires -o"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_jobs_produce_identical_modules() {
    let dir = std::env::temp_dir().join(format!("f3m-cli-test5-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.ir");
    run_ok(f3m().args(["gen", "433.milc", "--scale", "0.4", "-o"]).arg(&input));
    let mut outputs = Vec::new();
    for jobs in ["1", "4"] {
        let out = dir.join(format!("out-{jobs}.ir"));
        run_ok(f3m().arg("merge").arg(&input).arg("-o").arg(&out).args(["--jobs", jobs]));
        outputs.push(std::fs::read_to_string(&out).unwrap());
    }
    assert_eq!(outputs[0], outputs[1], "merged module must not depend on --jobs");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_rejects_unknown_workload() {
    let out = f3m().args(["gen", "999.nothing"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}

#[test]
fn run_reports_traps_as_errors() {
    let dir = std::env::temp_dir().join(format!("f3m-cli-test3-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.ir");
    std::fs::write(
        &input,
        r#"
module "t" {
define @boom(i32 %0) -> i32 {
bb0:
  %1 = sdiv i32 %0, 0
  ret i32 %1
}
}
"#,
    )
    .unwrap();
    let out = f3m().arg("run").arg(&input).args(["boom", "1"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("division by zero"));
    std::fs::remove_dir_all(&dir).ok();
}
