//! End-to-end tests of the `f3m` command-line tool, driving the real
//! binary through its full workflow: generate → stats → merge → run.

use std::process::Command;

fn f3m() -> Command {
    Command::new(env!("CARGO_BIN_EXE_f3m"))
}

fn run_ok(cmd: &mut Command) -> (String, String) {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed: {:?}\nstdout: {}\nstderr: {}",
        cmd,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_shows_the_suite() {
    let (stdout, _) = run_ok(&mut f3m().arg("list"));
    assert!(stdout.contains("chrome-scale"));
    assert!(stdout.contains("400.perlbench"));
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = f3m().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn full_workflow_gen_stats_merge_run() {
    let dir = std::env::temp_dir().join(format!("f3m-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.ir");
    let merged = dir.join("out.ir");

    // gen
    let (_, stderr) = run_ok(f3m()
        .args(["gen", "429.mcf", "--scale", "0.5", "-o"])
        .arg(&input));
    assert!(stderr.contains("generated 429.mcf"), "{stderr}");

    // stats
    let (stdout, _) = run_ok(f3m().arg("stats").arg(&input));
    assert!(stdout.contains("functions:"), "{stdout}");
    assert!(stdout.contains("est. size:"), "{stdout}");

    // run the original driver
    let (orig_out, _) = run_ok(f3m().arg("run").arg(&input).args(["__driver", "42"]));

    // merge with DCE
    let (_, stderr) = run_ok(f3m()
        .arg("merge")
        .arg(&input)
        .arg("-o")
        .arg(&merged)
        .args(["--strategy", "adaptive", "--dce"]));
    assert!(stderr.contains("reduction"), "{stderr}");

    // run the merged driver: same return value
    let (merged_out, _) = run_ok(f3m().arg("run").arg(&merged).args(["__driver", "42"]));
    let ret = |s: &str| s.split("->").nth(1).unwrap().split('[').next().unwrap().trim().to_string();
    assert_eq!(ret(&orig_out), ret(&merged_out), "{orig_out} vs {merged_out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_rejects_unknown_strategy() {
    let dir = std::env::temp_dir().join(format!("f3m-cli-test2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.ir");
    run_ok(f3m().args(["gen", "429.mcf", "--scale", "0.3", "-o"]).arg(&input));
    let out = f3m()
        .arg("merge")
        .arg(&input)
        .args(["--strategy", "nonsense"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown strategy"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_rejects_unknown_workload() {
    let out = f3m().args(["gen", "999.nothing"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}

#[test]
fn run_reports_traps_as_errors() {
    let dir = std::env::temp_dir().join(format!("f3m-cli-test3-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.ir");
    std::fs::write(
        &input,
        r#"
module "t" {
define @boom(i32 %0) -> i32 {
bb0:
  %1 = sdiv i32 %0, 0
  ret i32 %1
}
}
"#,
    )
    .unwrap();
    let out = f3m().arg("run").arg(&input).args(["boom", "1"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("division by zero"));
    std::fs::remove_dir_all(&dir).ok();
}
